package campaign

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"

	"flowery/internal/interp"
	"flowery/internal/progen"
	"flowery/internal/section"
	"flowery/internal/sim"
	"flowery/internal/stats"
)

// sectionedTarget builds a random multi-function program whose golden
// run is clean (progen programs may trap on e.g. divide-by-zero, which
// campaigns reject; the seeds used below are known-clean).
func sectionedTarget(seed int64) (*section.Table, EngineFactory) {
	m := progen.Generate(seed, progen.DefaultConfig())
	return section.BuildIR(m), factory(m)
}

// TestSectionedMatchesFull is the differential gate: on an unchanged
// program the composed sectioned SDC estimate must land inside the full
// campaign's 95% Wilson interval.
func TestSectionedMatchesFull(t *testing.T) {
	table, fac := sectionedTarget(19)
	spec := Spec{Runs: 4000, Seed: 7}
	full, err := Run(fac, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSectioned(fac, spec, SectionedOpts{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if !st.Sectioned || !st.Pruned {
		t.Fatalf("sectioned stats not flagged: %+v", st)
	}
	if st.Sections < 2 {
		t.Fatalf("want a multi-section program, got %d sections", st.Sections)
	}
	if st.SectionsExecuted != st.Sections || st.SectionsRecalled != 0 {
		t.Fatalf("cold run recalled sections: %d executed, %d recalled", st.SectionsExecuted, st.SectionsRecalled)
	}
	total := 0
	for _, c := range st.Counts {
		total += c
	}
	if total != st.Runs {
		t.Fatalf("scaled counts sum to %d, want %d", total, st.Runs)
	}
	rateSum := 0.0
	for o := Outcome(0); o < NumOutcomes; o++ {
		rateSum += st.Rate(o)
	}
	if math.Abs(rateSum-1) > 1e-9 {
		t.Fatalf("composed rates sum to %v, want 1", rateSum)
	}
	// Section weights must partition the fault population.
	var sites int64
	wSum := 0.0
	for _, r := range res.Sections {
		sites += r.Sites
		wSum += r.Weight
	}
	if sites != st.GoldenInjectable || math.Abs(wSum-1) > 1e-9 {
		t.Fatalf("sections cover %d sites (weight %v), want %d (1)", sites, wSum, st.GoldenInjectable)
	}
	_, flo, fhi := full.SDCRateCI()
	p, plo, phi := st.SDCRateCI()
	if plo > p || phi < p {
		t.Fatalf("sectioned CI [%v, %v] excludes its own estimate %v", plo, phi, p)
	}
	if p < flo || p > fhi {
		t.Fatalf("sectioned SDC %v outside full 95%% Wilson interval [%v, %v] (full %v)",
			p, flo, fhi, full.SDCRate())
	}
}

// TestSectionedPrunedMatchesFull checks the composition with
// class-based pruning: per-section equivalence plans must still compose
// into an estimate consistent with the full campaign.
func TestSectionedPrunedMatchesFull(t *testing.T) {
	table, fac := sectionedTarget(19)
	full, err := Run(fac, Spec{Runs: 2000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSectioned(fac, Spec{Runs: 2000, Seed: 7, Pruning: PruneClasses, PilotsPerClass: 4},
		SectionedOpts{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Classes == 0 || st.PilotRuns == 0 {
		t.Fatalf("empty sectioned plan: %d classes, %d pilots", st.Classes, st.PilotRuns)
	}
	_, flo, fhi := full.SDCRateCI()
	p, plo, phi := st.SDCRateCI()
	if phi < flo || plo > fhi {
		t.Fatalf("sectioned pruned SDC %v [%v, %v] disagrees with full %v [%v, %v]",
			p, plo, phi, full.SDCRate(), flo, fhi)
	}
}

// TestSectionedIncrementalRecall replays a sectioned campaign against
// the summaries the first run persisted: every section must be
// recalled, zero injections executed, and the composed statistics must
// be identical.
func TestSectionedIncrementalRecall(t *testing.T) {
	table, fac := sectionedTarget(19)
	blobs := map[string][]byte{}
	opts := SectionedOpts{
		Table:   table,
		Recall:  func(fp string) ([]byte, bool) { b, ok := blobs[fp]; return b, ok },
		Persist: func(fp string, b []byte) { blobs[fp] = b },
	}
	spec := Spec{Runs: 1500, Seed: 3}
	cold, err := RunSectioned(fac, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != cold.Stats.Sections {
		t.Fatalf("persisted %d summaries for %d sections", len(blobs), cold.Stats.Sections)
	}
	warm, err := RunSectioned(fac, spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.SectionsRecalled != warm.Stats.Sections || warm.Stats.SectionsExecuted != 0 {
		t.Fatalf("warm run executed sections: %+v", warm.Stats)
	}
	if warm.Stats.PilotRuns != 0 {
		t.Fatalf("warm run injected %d pilots, want 0", warm.Stats.PilotRuns)
	}
	if warm.Stats.EstRates != cold.Stats.EstRates || warm.Stats.Counts != cold.Stats.Counts ||
		warm.Stats.SDCLo != cold.Stats.SDCLo || warm.Stats.SDCHi != cold.Stats.SDCHi ||
		warm.Stats.SDCByOrigin != cold.Stats.SDCByOrigin {
		t.Fatalf("recalled composition differs:\ncold %+v\nwarm %+v", cold.Stats, warm.Stats)
	}
	for _, r := range warm.Sections {
		if !r.Recalled {
			t.Fatalf("section %s not marked recalled", r.Name)
		}
	}
}

// TestSectionedCompositionAssociative is the property test: composing
// the per-section summaries in any grouping and any order yields the
// same whole-program estimate, because flattening multiplies each
// stratum weight by its section weight exactly once no matter how the
// sections are associated.
func TestSectionedCompositionAssociative(t *testing.T) {
	for _, seed := range []int64{9, 11, 16} {
		table, fac := sectionedTarget(seed)
		var sums []*SectionSummary
		opts := SectionedOpts{
			Table: table,
			Persist: func(fp string, b []byte) {
				var s SectionSummary
				if err := json.Unmarshal(b, &s); err != nil {
					t.Fatalf("seed %d: bad summary blob: %v", seed, err)
				}
				sums = append(sums, &s)
			},
		}
		res, err := RunSectioned(fac, Spec{Runs: 1200, Seed: 13}, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(sums) < 2 {
			t.Fatalf("seed %d: want multiple sections, got %d", seed, len(sums))
		}
		var n int64
		for _, s := range sums {
			n += s.Sites
		}
		direct := func(order []int) (float64, float64, float64) {
			secs := make([]stats.SectionStrata, len(order))
			for i, j := range order {
				secs[i] = stats.SectionStrata{Weight: float64(sums[j].Sites) / float64(n), Strata: sums[j].OutcomeStrata(OutcomeSDC)}
			}
			return stats.ComposeSections(secs, stats.Z95)
		}
		ident := make([]int, len(sums))
		for i := range ident {
			ident[i] = i
		}
		p0, lo0, hi0 := direct(ident)
		if math.Abs(p0-res.Stats.EstRates[OutcomeSDC]) > 1e-12 ||
			math.Abs(lo0-res.Stats.SDCLo) > 1e-12 || math.Abs(hi0-res.Stats.SDCHi) > 1e-12 {
			t.Fatalf("seed %d: recomposed estimate %v [%v, %v] != campaign %v [%v, %v]",
				seed, p0, lo0, hi0, res.Stats.EstRates[OutcomeSDC], res.Stats.SDCLo, res.Stats.SDCHi)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 8; trial++ {
			// Random partition order.
			perm := rng.Perm(len(sums))
			p, lo, hi := direct(perm)
			if math.Abs(p-p0) > 1e-12 || math.Abs(lo-lo0) > 1e-12 || math.Abs(hi-hi0) > 1e-12 {
				t.Fatalf("seed %d trial %d: permuted composition %v [%v, %v] != %v [%v, %v]",
					seed, trial, p, lo, hi, p0, lo0, hi0)
			}
			// Random hierarchical grouping: compose each group into one
			// intermediate section (group-relative weights), then compose
			// the groups. Associativity means the result is unchanged.
			k := 2 + rng.Intn(len(sums))
			groups := make([][]int, k)
			for _, j := range perm {
				g := rng.Intn(k)
				groups[g] = append(groups[g], j)
			}
			var outer []stats.SectionStrata
			for _, g := range groups {
				if len(g) == 0 {
					continue
				}
				var gs int64
				for _, j := range g {
					gs += sums[j].Sites
				}
				inner := make([]stats.SectionStrata, len(g))
				for i, j := range g {
					inner[i] = stats.SectionStrata{Weight: float64(sums[j].Sites) / float64(gs), Strata: sums[j].OutcomeStrata(OutcomeSDC)}
				}
				outer = append(outer, stats.SectionStrata{Weight: float64(gs) / float64(n), Strata: stats.FlattenSections(inner)})
			}
			p, lo, hi = stats.ComposeSections(outer, stats.Z95)
			if math.Abs(p-p0) > 1e-12 || math.Abs(lo-lo0) > 1e-12 || math.Abs(hi-hi0) > 1e-12 {
				t.Fatalf("seed %d trial %d: grouped composition %v [%v, %v] != %v [%v, %v]",
					seed, trial, p, lo, hi, p0, lo0, hi0)
			}
		}
	}
}

func TestSectionedRejectsRecords(t *testing.T) {
	table, fac := sectionedTarget(19)
	_, err := RunSectioned(fac, Spec{Runs: 100, Seed: 1, Records: func(Record) {}}, SectionedOpts{Table: table})
	if err == nil || !strings.Contains(err.Error(), "records") {
		t.Fatalf("records request accepted (err=%v)", err)
	}
	_, err = RunSectioned(fac, Spec{Runs: 100, Seed: 1}, SectionedOpts{})
	if err == nil || !strings.Contains(err.Error(), "section table") {
		t.Fatalf("nil table accepted (err=%v)", err)
	}
}

func TestSectionedRejectsNonTracingEngine(t *testing.T) {
	table, _ := sectionedTarget(19)
	fac := func() (sim.Engine, error) { return opaqueEngine{interp.New(buildTarget())}, nil }
	_, err := RunSectioned(fac, Spec{Runs: 100, Seed: 1}, SectionedOpts{Table: table})
	if err == nil || !strings.Contains(err.Error(), "def-use tracing") {
		t.Fatalf("non-tracing engine accepted (err=%v)", err)
	}
}
