package campaign

import (
	"fmt"
	"runtime"
	"time"

	"flowery/internal/asm"
	"flowery/internal/equiv"
	"flowery/internal/sim"
	"flowery/internal/stats"
)

// MaxPilotsPerClass bounds Spec.PilotsPerClass (the average per-class
// pilot budget); it matches the per-class site sample the trace
// collector retains, so a larger average would outgrow the reservoir.
const MaxPilotsPerClass = 8

// RunPruned executes an equivalence-pruned campaign: the golden run is
// traced (sim.TraceEngine) to partition the injectable fault population
// into def-use equivalence classes, a pilot budget of PilotsPerClass
// per live class is allocated across strata by class weight
// (equiv.BuildPlan), dead classes (values never read) are scored benign
// without injection, and per-stratum outcome rates are extrapolated to
// population-level statistics with stratified confidence intervals
// (package stats). See DESIGN.md §10 for the equivalence model and its
// soundness caveats.
//
// The returned Stats has Pruned set; Counts are the stratified estimates
// scaled to spec.Runs so downstream consumers that expect a campaign of
// that size keep working.
func RunPruned(factory EngineFactory, spec Spec) (Stats, error) {
	if spec.Pruning != PruneClasses {
		return Run(factory, spec)
	}
	start := time.Now()
	if err := spec.Validate(); err != nil {
		return Stats{}, err
	}

	first, err := factory()
	if err != nil {
		return Stats{}, fmt.Errorf("campaign: engine 0: %w", err)
	}
	te, ok := first.(sim.TraceEngine)
	if !ok {
		return Stats{}, fmt.Errorf("campaign: engine %T does not support def-use tracing; use Pruning: none", first)
	}

	rules := equiv.DefaultRules(spec.Seed)
	// Match the sample to the largest pilot count a stratum can take
	// (equiv.BuildPlan), so a dominant class draws distinct sites
	// instead of cycling a short sample, which would put a floor under
	// the site-heterogeneity variance.
	rules.MaxSample = 256
	col := equiv.NewCollector(rules)
	gs := spec.Metrics.StartSpan(spec.TraceSpan, "campaign.golden")
	gs.SetAttr("traced", "true")
	golden := te.RunTraced(sim.Options{MaxSteps: spec.MaxSteps, Reference: spec.Reference, Metrics: spec.Metrics}, col)
	gs.SetIntAttr("injectable", golden.InjectableInstrs)
	gs.End()
	if golden.Status != sim.StatusOK {
		return Stats{}, fmt.Errorf("campaign: golden run failed: %v (%v)", golden.Status, golden.Trap)
	}
	if golden.InjectableInstrs == 0 {
		return Stats{}, fmt.Errorf("campaign: program has no injectable instructions")
	}
	if err := checkPopulation(spec.Runs, golden.InjectableInstrs); err != nil {
		return Stats{}, err
	}
	part := col.Close()
	if part.Population != golden.InjectableInstrs {
		return Stats{}, fmt.Errorf("campaign: tracer recorded %d defs for %d injectable sites (engine def-order contract violated)",
			part.Population, golden.InjectableInstrs)
	}
	goldenOut := append([]byte(nil), golden.Output...)

	plan := equiv.BuildPlan(part, equiv.PlanSpec{PilotsPerClass: spec.PilotsPerClass, Seed: spec.Seed, Masked: spec.Masks})
	var faults []sim.Fault
	var stratumOf []int
	for si := range plan.Strata {
		for _, f := range plan.Strata[si].Pilots {
			faults = append(faults, f)
			stratumOf = append(stratumOf, si)
		}
	}

	var outcomes []runOutcome
	var simulated, saved int64
	if len(faults) > 0 {
		workers := spec.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(faults) {
			workers = len(faults)
		}
		engines := make([]sim.Engine, workers)
		engines[0] = first
		for i := 1; i < workers; i++ {
			e, err := factory()
			if err != nil {
				return Stats{}, fmt.Errorf("campaign: engine %d: %w", i, err)
			}
			engines[i] = e
		}
		outcomes, simulated, saved = executeFaults(engines, spec, golden, goldenOut, faults)
	}

	// Per-stratum outcome tallies, plus SDC origin weights (each pilot
	// speaks for its stratum's choice mass, in site units, divided by
	// the pilot count; without masks that is Sites/len(Pilots) exactly).
	tallies := make([][NumOutcomes]int, len(plan.Strata))
	var originW [asm.NumOrigins]float64
	for j := range outcomes {
		si := stratumOf[j]
		tallies[si][outcomes[j].outcome]++
		if outcomes[j].outcome == OutcomeSDC {
			s := &plan.Strata[si]
			originW[outcomes[j].origin] += float64(s.Choices) / 64 / float64(len(s.Pilots))
		}
	}

	// Stratum weights are measured in (site, bit-choice) pairs out of
	// the 64 × population alphabet. Without masks every stratum carries
	// Choices = 64 × Sites, so the ratio reduces to the PR 3 site
	// weight exactly (both scalings by 64 are lossless in float64).
	pairPop := 64 * float64(part.Population)
	total := Stats{
		Runs:             spec.Runs,
		GoldenDyn:        golden.DynInstrs,
		GoldenInjectable: golden.InjectableInstrs,
		SimulatedInstrs:  golden.DynInstrs + simulated,
		SavedInstrs:      saved,
		Pruned:           true,
		Classes:          len(part.Classes),
		DeadSites:        part.DeadSites,
		DeadBits:         64 * part.DeadSites,
		PilotRuns:        len(faults),
	}
	for si := range plan.Strata {
		if plan.Strata[si].Masked {
			total.MaskedSites = plan.Strata[si].Sites
			total.MaskedBits = plan.Strata[si].Choices
		}
	}
	for o := Outcome(0); o < NumOutcomes; o++ {
		st := make([]stats.Stratum, 0, len(plan.Strata))
		for si := range plan.Strata {
			s := &plan.Strata[si]
			w := float64(s.Choices) / pairPop
			if s.Exact {
				// Dead sites and statically proven-masked choices are
				// benign by construction: the flipped value (or bit) is
				// never read at this layer, so it can neither trap nor
				// reach the output.
				hits := 0
				if o == OutcomeBenign {
					hits = 1
				}
				st = append(st, stats.Stratum{Weight: w, Hits: hits, Total: 1, Exact: true})
				continue
			}
			st = append(st, stats.Stratum{Weight: w, Hits: tallies[si][o], Total: len(s.Pilots)})
		}
		if o == OutcomeSDC {
			total.EstRates[o], total.SDCLo, total.SDCHi = stats.StratifiedCI(st, stats.Z95)
		} else {
			total.EstRates[o] = stats.StratifiedP(st)
		}
	}

	counts := apportion(total.EstRates[:], spec.Runs)
	copy(total.Counts[:], counts)
	origins := apportion(originW[:], total.Counts[OutcomeSDC])
	copy(total.SDCByOrigin[:], origins)
	total.Elapsed = time.Since(start)
	flushStats(spec.Metrics, total)
	return total, nil
}

// apportion rounds nonnegative shares to integers summing to total
// (largest-remainder method; ties broken toward lower indices so the
// result is deterministic). Shares need not be normalized. All-zero
// shares yield all-zero counts.
func apportion(shares []float64, total int) []int {
	out := make([]int, len(shares))
	if total <= 0 {
		return out
	}
	sum := 0.0
	for _, s := range shares {
		if s > 0 {
			sum += s
		}
	}
	if sum == 0 {
		return out
	}
	type frac struct {
		i int
		f float64
	}
	rem := total
	fracs := make([]frac, 0, len(shares))
	for i, s := range shares {
		if s <= 0 {
			continue
		}
		exact := s / sum * float64(total)
		fl := int(exact)
		out[i] = fl
		rem -= fl
		fracs = append(fracs, frac{i, exact - float64(fl)})
	}
	for ; rem > 0; rem-- {
		best := -1
		for j := range fracs {
			if best < 0 || fracs[j].f > fracs[best].f {
				best = j
			}
		}
		if best < 0 {
			break
		}
		out[fracs[best].i]++
		fracs[best].f = -1
	}
	return out
}
