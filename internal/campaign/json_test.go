package campaign

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestStatsJSONRoundTrip pins the codec contract the artifact store and
// the daemon API depend on: Unmarshal(Marshal(s)) re-marshals to the
// same bytes, and every deterministic field survives exactly.
func TestStatsJSONRoundTrip(t *testing.T) {
	cases := map[string]Stats{
		"plain": {
			Runs:             400,
			Counts:           [NumOutcomes]int{301, 40, 50, 9},
			SDCByOrigin:      [6]int{12, 3, 0, 5, 0, 20},
			GoldenDyn:        123456,
			GoldenInjectable: 98765,
			SimulatedInstrs:  1 << 40,
			SavedInstrs:      1 << 33,
			Elapsed:          1500 * time.Millisecond,
		},
		"no-origins": {
			Runs:             10,
			Counts:           [NumOutcomes]int{10, 0, 0, 0},
			GoldenDyn:        5,
			GoldenInjectable: 5,
		},
		"pruned": {
			Runs:             3000,
			Counts:           [NumOutcomes]int{2000, 500, 400, 100},
			GoldenDyn:        777,
			GoldenInjectable: 700,
			Pruned:           true,
			Classes:          42,
			DeadSites:        17,
			PilotRuns:        321,
			EstRates:         [NumOutcomes]float64{0.66, 0.1675, 0.139, 0.0335},
			SDCLo:            0.15,
			SDCHi:            0.19,
		},
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			first, err := json.Marshal(in)
			if err != nil {
				t.Fatal(err)
			}
			var back Stats
			if err := json.Unmarshal(first, &back); err != nil {
				t.Fatal(err)
			}
			second, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("re-marshal diverges:\n first %s\nsecond %s", first, second)
			}
			if back.Runs != in.Runs || back.Counts != in.Counts || back.SDCByOrigin != in.SDCByOrigin ||
				back.GoldenDyn != in.GoldenDyn || back.GoldenInjectable != in.GoldenInjectable ||
				back.SimulatedInstrs != in.SimulatedInstrs || back.SavedInstrs != in.SavedInstrs ||
				back.Elapsed != in.Elapsed || back.Pruned != in.Pruned || back.Classes != in.Classes ||
				back.DeadSites != in.DeadSites || back.PilotRuns != in.PilotRuns {
				t.Fatalf("fields diverge:\n in   %+v\n back %+v", in, back)
			}
			if in.Pruned && (back.EstRates != in.EstRates || back.SDCLo != in.SDCLo || back.SDCHi != in.SDCHi) {
				t.Fatalf("pruned estimates diverge:\n in   %+v\n back %+v", in, back)
			}
		})
	}
}

func TestStatsUnmarshalRejectsUnknownNames(t *testing.T) {
	for _, bad := range []string{
		`{"runs":1,"counts":{"exploded":1}}`,
		`{"runs":1,"counts":{},"sdc_by_origin":{"teleport":2}}`,
	} {
		var s Stats
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("unmarshal %s succeeded, want error", bad)
		}
	}
}
