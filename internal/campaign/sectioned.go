package campaign

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"time"

	"flowery/internal/asm"
	"flowery/internal/equiv"
	"flowery/internal/section"
	"flowery/internal/sim"
	"flowery/internal/stats"
)

// SectionStratumSummary is one stratum of a section's error-propagation
// summary: a within-section weight plus the pilot outcome tallies.
// Exact strata (dead defs, statically proven-masked choices) follow
// RunPruned's convention of a single synthetic benign observation.
type SectionStratumSummary struct {
	// Weight is the stratum's share of the section's own (site,
	// bit-choice) population; a section's weights sum to 1.
	Weight float64 `json:"weight"`
	// Exact marks zero-variance strata whose outcome is known without
	// injection.
	Exact bool `json:"exact,omitempty"`
	// Total is the pilot count (1 for exact strata).
	Total int `json:"total"`
	// Counts are the pilot outcome tallies in Outcome order.
	Counts [NumOutcomes]int `json:"counts"`
}

// SectionSummary is the stored error-propagation summary of one program
// section: a self-contained stratified estimate of the section's fault
// outcomes — masked (benign), corrupt-but-detected (detected/DUE), and
// silently corrupt (SDC) — classified at the program boundary. All
// weights are section-relative, so the summary never references the
// rest of the program and stays valid under edits elsewhere as long as
// the section's own content hash and dynamic site count are unchanged
// (the two components of its recall fingerprint).
type SectionSummary struct {
	Name string `json:"name"`
	Hash string `json:"hash"`
	// Sites is the section's dynamic injectable site count.
	Sites int64 `json:"sites"`
	// Classes is the number of equivalence classes the summary's strata
	// were built from (0 under the uniform plan).
	Classes   int   `json:"classes,omitempty"`
	DeadSites int64 `json:"dead_sites,omitempty"`
	// MaskedSites/MaskedBits mirror Stats' fields, section-scoped.
	MaskedSites int64 `json:"masked_sites,omitempty"`
	MaskedBits  int64 `json:"masked_bits,omitempty"`
	// PilotRuns is the number of injections the summary cost when it
	// was computed (recalling it costs zero).
	PilotRuns int `json:"pilot_runs"`
	// Strata are the within-section strata.
	Strata []SectionStratumSummary `json:"strata"`
	// OriginW, when present, attributes the section's SDC rate to
	// assembly provenance tags (asm.Origin order, section-relative site
	// rate units).
	OriginW []float64 `json:"origin_w,omitempty"`
}

// OutcomeStrata views the summary as a stats stratification for one
// outcome, in section-relative weights (compose with the section's
// population share via stats.SectionStrata).
func (s *SectionSummary) OutcomeStrata(o Outcome) []stats.Stratum {
	out := make([]stats.Stratum, len(s.Strata))
	for i, st := range s.Strata {
		out[i] = stats.Stratum{Weight: st.Weight, Hits: st.Counts[o], Total: st.Total, Exact: st.Exact}
	}
	return out
}

// Rate is the section's own estimated rate for one outcome.
func (s *SectionSummary) Rate(o Outcome) float64 {
	return stats.StratifiedP(s.OutcomeStrata(o))
}

// SectionReport is one section's row of a sectioned campaign result.
type SectionReport struct {
	Name string `json:"name"`
	Hash string `json:"hash"`
	// Sites and Weight place the section in the whole program.
	Sites  int64   `json:"sites"`
	Weight float64 `json:"weight"`
	// Recalled marks sections served from a stored summary; PilotRuns
	// is the summary's original injection cost either way.
	Recalled  bool `json:"recalled"`
	PilotRuns int  `json:"pilot_runs"`
	// SDC is the section's own silent-corruption rate; SDCMass is its
	// contribution Weight×SDC to the whole-program rate — the benefit
	// term of budgeted protection placement.
	SDC     float64 `json:"sdc"`
	SDCMass float64 `json:"sdc_mass"`
}

// SectionedResult is a sectioned campaign's composed statistics plus
// the per-section breakdown.
type SectionedResult struct {
	Stats    Stats           `json:"stats"`
	Sections []SectionReport `json:"sections"`
}

// SectionedOpts wires RunSectioned to a section table and (optionally)
// a persistent summary store. Recall and Persist speak fingerprint →
// JSON summary blob; the fingerprint already encodes everything
// outcome-relevant about the section (content hash, dynamic site
// count, plan shape), so callers only add ambient identity — layer,
// seed, backend config — to form a store key.
type SectionedOpts struct {
	Table *section.Table
	// Recall returns the stored summary blob for a fingerprint, if any.
	Recall func(fingerprint string) ([]byte, bool)
	// Persist stores a freshly computed summary blob.
	Persist func(fingerprint string, blob []byte)
}

// sectionSeed derives a per-section RNG seed from the campaign seed and
// the section's content hash, so a section's pilot choices are stable
// under edits elsewhere (a program edit renumbers sections and shifts
// static indices, but hashes of untouched functions survive).
func sectionSeed(seed int64, hash string) int64 {
	h, err := strconv.ParseUint(hash[:16], 16, 64)
	if err != nil {
		h = 0
	}
	return int64(splitmix64(uint64(seed) ^ h))
}

// quantRateExp quantizes the campaign's per-site sampling rate
// Runs/Population to a power of √2, returned as the doubled log2
// exponent. Keying uniform-plan fingerprints on the quantized exponent
// instead of the raw population keeps a clean section's fingerprint
// stable when an edit shifts the whole-program population slightly:
// re-analysis reuses the section at the old (within-√2) rate, and the
// stratified composition is indifferent to modestly unequal per-section
// allocation.
func quantRateExp(runs int, population int64) int {
	return int(math.Round(2 * math.Log2(float64(runs)/float64(population))))
}

// uniformStrata is the sectioned campaign's unpruned plan: one stratum
// of pilots drawn marginally uniformly over the section's live (site,
// bit) population — class chosen by size, site from the class's
// stream-stratified sample, bit uniform, exactly the merged-tail
// sampling of equiv.BuildPlan — plus the exact dead stratum.
func uniformStrata(part equiv.Partition, pilots int, seed int64) []equiv.Stratum {
	var live []int
	var liveSites, deadSites int64
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		// Every live class carries at least its first member in Sample;
		// the len check is the same defensive guard BuildPlan applies.
		if cl.Dead || len(cl.Sample) == 0 {
			deadSites += cl.Size
			continue
		}
		live = append(live, ci)
		liveSites += cl.Size
	}
	var strata []equiv.Stratum
	if liveSites > 0 {
		n := pilots
		if n < 1 {
			n = 1
		}
		if max := 64 * liveSites; int64(n) > max {
			n = int(max)
		}
		rng := splitmix64(uint64(seed)^splitmix64(0x9e3779b97f4a7c15)) | 1
		pf := make([]sim.Fault, n)
		for i := 0; i < n; i++ {
			rng = splitmix64(rng)
			target := rng % uint64(liveSites)
			var cl *equiv.Class
			for _, ci := range live {
				c := &part.Classes[ci]
				if target < uint64(c.Size) {
					cl = c
					break
				}
				target -= uint64(c.Size)
			}
			rng = splitmix64(rng)
			site := cl.Sample[rng%uint64(len(cl.Sample))]
			rng = splitmix64(rng)
			pf[i] = sim.Fault{TargetIndex: site, Bit: int(rng % 64)}
		}
		strata = append(strata, equiv.Stratum{Class: -1, Sites: liveSites, Choices: 64 * liveSites, Pilots: pf})
	}
	if deadSites > 0 {
		strata = append(strata, equiv.Stratum{Class: -1, Sites: deadSites, Choices: 64 * deadSites, Exact: true})
	}
	return strata
}

// RunSectioned executes a compositional per-section campaign: the
// golden run is traced once to partition the fault population by
// section (opts.Table), each section is either recalled from a stored
// summary — keyed by content hash, dynamic site count, and plan shape,
// so summaries survive edits elsewhere in the program — or estimated
// with its own pilot injections, and the per-section summaries compose
// into whole-program statistics via stats.ComposeSections.
//
// Pruning composes: PruneNone samples each section uniformly at the
// campaign's (quantized) per-site rate; PruneClasses builds a
// per-section equivalence plan with Spec.PilotsPerClass, and Masks
// folds statically proven-masked choices into exact strata exactly as
// in RunPruned. Records are unsupported — like pruned campaigns,
// sectioned ones have no per-run population sample.
//
// The returned Stats has Pruned and Sectioned set; PilotRuns counts
// only the injections this call executed, which is the incremental
// re-analysis cost when summaries were recalled.
func RunSectioned(factory EngineFactory, spec Spec, opts SectionedOpts) (SectionedResult, error) {
	start := time.Now()
	if opts.Table == nil {
		return SectionedResult{}, fmt.Errorf("campaign: sectioned run needs a section table")
	}
	if spec.Records != nil {
		return SectionedResult{}, fmt.Errorf("campaign: sectioned campaigns extrapolate per-section strata and have no per-run records")
	}
	if err := spec.Validate(); err != nil {
		return SectionedResult{}, err
	}

	first, err := factory()
	if err != nil {
		return SectionedResult{}, fmt.Errorf("campaign: engine 0: %w", err)
	}
	te, ok := first.(sim.TraceEngine)
	if !ok {
		return SectionedResult{}, fmt.Errorf("campaign: engine %T does not support def-use tracing required by sectioned campaigns", first)
	}

	rules := equiv.DefaultRules(spec.Seed)
	rules.MaxSample = 256
	col := equiv.NewCollector(rules)
	gs := spec.Metrics.StartSpan(spec.TraceSpan, "campaign.golden")
	gs.SetAttr("traced", "true")
	golden := te.RunTraced(sim.Options{MaxSteps: spec.MaxSteps, Reference: spec.Reference, Metrics: spec.Metrics}, col)
	gs.SetIntAttr("injectable", golden.InjectableInstrs)
	gs.End()
	if golden.Status != sim.StatusOK {
		return SectionedResult{}, fmt.Errorf("campaign: golden run failed: %v (%v)", golden.Status, golden.Trap)
	}
	if golden.InjectableInstrs == 0 {
		return SectionedResult{}, fmt.Errorf("campaign: program has no injectable instructions")
	}
	if err := checkPopulation(spec.Runs, golden.InjectableInstrs); err != nil {
		return SectionedResult{}, err
	}
	part := col.Close()
	if part.Population != golden.InjectableInstrs {
		return SectionedResult{}, fmt.Errorf("campaign: tracer recorded %d defs for %d injectable sites (engine def-order contract violated)",
			part.Population, golden.InjectableInstrs)
	}
	goldenOut := append([]byte(nil), golden.Output...)

	subs, err := opts.Table.Split(part)
	if err != nil {
		return SectionedResult{}, err
	}

	// Fingerprint suffix shared by every section: the plan shape.
	var planKey string
	var rate float64
	if spec.Pruning == PruneClasses {
		planKey = fmt.Sprintf("plan=classes|k=%d", spec.PilotsPerClass)
		if spec.Masks != nil {
			planKey += "|mask=1"
		}
	} else {
		e := quantRateExp(spec.Runs, part.Population)
		rate = math.Pow(2, float64(e)/2)
		planKey = fmt.Sprintf("plan=uniform|r=%d", e)
	}

	// Recall or plan each section. Dirty sections contribute their
	// pilots to one shared execution batch.
	summaries := make([]*SectionSummary, len(subs))
	recalled := make([]bool, len(subs))
	planStrata := make([][]equiv.Stratum, len(subs))
	var faults []sim.Fault
	type pilotRef struct{ sub, stratum int }
	var refs []pilotRef
	for i := range subs {
		sec := &opts.Table.Sections[subs[i].ID]
		fp := fmt.Sprintf("%s|n=%d|%s", sec.Hash, subs[i].Part.Population, planKey)
		if opts.Recall != nil {
			if blob, ok := opts.Recall(fp); ok {
				var sum SectionSummary
				if json.Unmarshal(blob, &sum) == nil && sum.Sites == subs[i].Part.Population && len(sum.Strata) > 0 {
					summaries[i] = &sum
					recalled[i] = true
					continue
				}
			}
		}
		seed := sectionSeed(spec.Seed, sec.Hash)
		if spec.Pruning == PruneClasses {
			plan := equiv.BuildPlan(subs[i].Part, equiv.PlanSpec{PilotsPerClass: spec.PilotsPerClass, Seed: seed, Masked: spec.Masks})
			planStrata[i] = plan.Strata
		} else {
			n := int(math.Round(rate * float64(subs[i].Part.Population-subs[i].Part.DeadSites)))
			planStrata[i] = uniformStrata(subs[i].Part, n, seed)
		}
		for si := range planStrata[i] {
			for _, f := range planStrata[i][si].Pilots {
				faults = append(faults, f)
				refs = append(refs, pilotRef{i, si})
			}
		}
	}

	// One batch executes every dirty section's pilots.
	var outcomes []runOutcome
	var simulated, saved int64
	if len(faults) > 0 {
		workers := spec.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(faults) {
			workers = len(faults)
		}
		engines := make([]sim.Engine, workers)
		engines[0] = first
		for i := 1; i < workers; i++ {
			e, err := factory()
			if err != nil {
				return SectionedResult{}, fmt.Errorf("campaign: engine %d: %w", i, err)
			}
			engines[i] = e
		}
		outcomes, simulated, saved = executeFaults(engines, spec, golden, goldenOut, faults)
	}

	// Per-(section, stratum) tallies and per-section SDC origin weights
	// in section-relative site-rate units.
	tallies := make([][][NumOutcomes]int, len(subs))
	originW := make([][asm.NumOrigins]float64, len(subs))
	for i := range subs {
		tallies[i] = make([][NumOutcomes]int, len(planStrata[i]))
	}
	for j := range outcomes {
		r := refs[j]
		tallies[r.sub][r.stratum][outcomes[j].outcome]++
		if outcomes[j].outcome == OutcomeSDC {
			s := &planStrata[r.sub][r.stratum]
			nS := float64(subs[r.sub].Part.Population)
			originW[r.sub][outcomes[j].origin] += float64(s.Choices) / 64 / float64(len(s.Pilots)) / nS
		}
	}

	// Summarize dirty sections and persist their summaries.
	for i := range subs {
		if recalled[i] {
			continue
		}
		sec := &opts.Table.Sections[subs[i].ID]
		nS := subs[i].Part.Population
		sum := &SectionSummary{
			Name:      sec.Name,
			Hash:      sec.Hash,
			Sites:     nS,
			DeadSites: subs[i].Part.DeadSites,
		}
		if spec.Pruning == PruneClasses {
			sum.Classes = len(subs[i].Part.Classes)
		}
		for si := range planStrata[i] {
			st := &planStrata[i][si]
			ss := SectionStratumSummary{
				Weight: float64(st.Choices) / 64 / float64(nS),
				Exact:  st.Exact,
			}
			if st.Exact {
				ss.Total = 1
				ss.Counts[OutcomeBenign] = 1
			} else {
				ss.Total = len(st.Pilots)
				ss.Counts = tallies[i][si]
				sum.PilotRuns += len(st.Pilots)
			}
			if st.Masked {
				sum.MaskedSites = st.Sites
				sum.MaskedBits = st.Choices
			}
			sum.Strata = append(sum.Strata, ss)
		}
		for _, w := range originW[i] {
			if w > 0 {
				sum.OriginW = append([]float64(nil), originW[i][:]...)
				break
			}
		}
		summaries[i] = sum
		if opts.Persist != nil {
			if blob, merr := json.Marshal(sum); merr == nil {
				opts.Persist(fmt.Sprintf("%s|n=%d|%s", sec.Hash, nS, planKey), blob)
			}
		}
	}

	// Compose summaries into whole-program statistics.
	total := Stats{
		Runs:             spec.Runs,
		GoldenDyn:        golden.DynInstrs,
		GoldenInjectable: golden.InjectableInstrs,
		SimulatedInstrs:  golden.DynInstrs + simulated,
		SavedInstrs:      saved,
		Pruned:           true,
		Sectioned:        true,
		Sections:         len(subs),
		PilotRuns:        len(faults),
	}
	N := float64(part.Population)
	var globalOriginW [asm.NumOrigins]float64
	reports := make([]SectionReport, len(subs))
	for i, sum := range summaries {
		w := float64(sum.Sites) / N
		total.Classes += sum.Classes
		total.DeadSites += sum.DeadSites
		total.MaskedSites += sum.MaskedSites
		total.MaskedBits += sum.MaskedBits
		if recalled[i] {
			total.SectionsRecalled++
		} else {
			total.SectionsExecuted++
		}
		for o, ow := range sum.OriginW {
			globalOriginW[o] += w * ow
		}
		sdc := sum.Rate(OutcomeSDC)
		reports[i] = SectionReport{
			Name:      sum.Name,
			Hash:      sum.Hash,
			Sites:     sum.Sites,
			Weight:    w,
			Recalled:  recalled[i],
			PilotRuns: sum.PilotRuns,
			SDC:       sdc,
			SDCMass:   w * sdc,
		}
	}
	total.DeadBits = 64 * total.DeadSites
	for o := Outcome(0); o < NumOutcomes; o++ {
		secs := make([]stats.SectionStrata, len(summaries))
		for i, sum := range summaries {
			secs[i] = stats.SectionStrata{Weight: float64(sum.Sites) / N, Strata: sum.OutcomeStrata(o)}
		}
		if o == OutcomeSDC {
			total.EstRates[o], total.SDCLo, total.SDCHi = stats.ComposeSections(secs, stats.Z95)
		} else {
			total.EstRates[o] = stats.StratifiedP(stats.FlattenSections(secs))
		}
	}
	counts := apportion(total.EstRates[:], spec.Runs)
	copy(total.Counts[:], counts)
	origins := apportion(globalOriginW[:], total.Counts[OutcomeSDC])
	copy(total.SDCByOrigin[:], origins)
	total.Elapsed = time.Since(start)
	flushStats(spec.Metrics, total)
	return SectionedResult{Stats: total, Sections: reports}, nil
}
