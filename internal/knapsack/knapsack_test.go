package knapsack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyBasic(t *testing.T) {
	items := []Item{
		{Benefit: 10, Cost: 5},
		{Benefit: 6, Cost: 2}, // density 3
		{Benefit: 3, Cost: 3},
	}
	picked := Greedy(items, 7)
	// Greedy by density: item1 (3/unit), item0 (2/unit) fits 5 after 2.
	if TotalCost(items, picked) > 7 {
		t.Fatalf("budget exceeded: %d", TotalCost(items, picked))
	}
	if TotalBenefit(items, picked) < 16 {
		t.Fatalf("greedy found %v (benefit %v), expected >= 16", picked, TotalBenefit(items, picked))
	}
}

func TestGreedySkipsOversized(t *testing.T) {
	items := []Item{
		{Benefit: 100, Cost: 50}, // best density but doesn't fit
		{Benefit: 1, Cost: 1},
	}
	picked := Greedy(items, 10)
	if len(picked) != 1 || picked[0] != 1 {
		t.Fatalf("greedy should skip and continue: %v", picked)
	}
}

func TestGreedyIgnoresZeroBenefit(t *testing.T) {
	items := []Item{{Benefit: 0, Cost: 1}, {Benefit: 5, Cost: 1}}
	picked := Greedy(items, 10)
	if len(picked) != 1 || picked[0] != 1 {
		t.Fatalf("zero-benefit item selected: %v", picked)
	}
}

func TestDPOptimalSmall(t *testing.T) {
	// Classic instance where greedy-by-density is suboptimal.
	items := []Item{
		{Benefit: 60, Cost: 10},
		{Benefit: 100, Cost: 20},
		{Benefit: 120, Cost: 30},
	}
	picked := DP(items, 50)
	if TotalBenefit(items, picked) != 220 {
		t.Fatalf("DP found %v (benefit %v), optimum is 220", picked, TotalBenefit(items, picked))
	}
	if TotalCost(items, picked) > 50 {
		t.Fatal("DP exceeded budget")
	}
}

// Property: greedy never exceeds the budget and never beats DP; DP never
// exceeds the budget.
func TestGreedyVsDPProperties(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		items := make([]Item, n)
		totalCost := int64(0)
		for i := range items {
			items[i] = Item{Benefit: float64(r.Intn(50)), Cost: int64(1 + r.Intn(20))}
			totalCost += items[i].Cost
		}
		budget := int64(r.Intn(int(totalCost) + 1))
		g := Greedy(items, budget)
		d := DP(items, budget)
		if TotalCost(items, g) > budget || TotalCost(items, d) > budget {
			t.Logf("seed %d: budget exceeded", seed)
			return false
		}
		if TotalBenefit(items, g) > TotalBenefit(items, d)+1e-9 {
			t.Logf("seed %d: greedy %v beat DP %v", seed, TotalBenefit(items, g), TotalBenefit(items, d))
			return false
		}
		// Density greedy is a 1/2 approximation when the max single item
		// is also considered; our variant with skip-and-continue should
		// reach at least one item's benefit when anything fits.
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDPScaledRespectsBudget(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	items := make([]Item, 60)
	for i := range items {
		items[i] = Item{Benefit: float64(r.Intn(1000)), Cost: int64(1 + r.Intn(100000))}
	}
	budget := int64(800000)
	picked := DPScaled(items, budget, 500)
	if TotalCost(items, picked) > budget {
		t.Fatalf("scaled DP exceeded budget: %d > %d", TotalCost(items, picked), budget)
	}
	if len(picked) == 0 {
		t.Fatal("scaled DP picked nothing despite generous budget")
	}
}

func TestZeroBudget(t *testing.T) {
	items := []Item{{Benefit: 5, Cost: 1}}
	if len(Greedy(items, 0)) != 0 || len(DP(items, 0)) != 0 || len(DPScaled(items, 0, 10)) != 0 {
		t.Fatal("zero budget selected items")
	}
}

func TestFreeItemsAlwaysTaken(t *testing.T) {
	items := []Item{{Benefit: 5, Cost: 0}, {Benefit: 1, Cost: 100}}
	picked := Greedy(items, 1)
	found := false
	for _, i := range picked {
		if i == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("free beneficial item not taken")
	}
}
