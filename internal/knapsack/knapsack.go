// Package knapsack solves the 0-1 knapsack instances produced by
// selective instruction duplication: maximize detected-SDC benefit under
// a dynamic-instruction overhead budget (paper §3). The greedy
// density solver handles the large instances from real profiles; the
// exact DP solver handles small instances and validates the greedy in
// tests.
package knapsack

import "sort"

// Item is one candidate (a static instruction): protecting it yields
// Benefit and costs Cost units of the budget.
type Item struct {
	Benefit float64
	Cost    int64
}

// Greedy picks items in decreasing benefit density until the budget is
// exhausted, returning selected indices in ascending order. Zero-cost
// items with positive benefit are always taken. Classic 1/2-approximation
// density heuristic (with the usual skip-and-continue refinement: items
// that do not fit are skipped, later smaller items may still fit).
func Greedy(items []Item, budget int64) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		// Free items first, then by density.
		da := density(ia)
		db := density(ib)
		if da != db {
			return da > db
		}
		return ia.Cost < ib.Cost
	})
	var picked []int
	remaining := budget
	for _, idx := range order {
		it := items[idx]
		if it.Benefit <= 0 {
			continue
		}
		if it.Cost <= remaining {
			picked = append(picked, idx)
			remaining -= it.Cost
		}
	}
	sort.Ints(picked)
	return picked
}

func density(it Item) float64 {
	if it.Cost <= 0 {
		return 1e18 // free: infinite density
	}
	return it.Benefit / float64(it.Cost)
}

// DP solves the instance exactly with dynamic programming over budget
// units. It is exponential in neither dimension but uses O(n·budget)
// time, so callers should scale budgets (see DPScaled) for large
// instances.
func DP(items []Item, budget int64) []int {
	if budget < 0 {
		budget = 0
	}
	w := int(budget)
	n := len(items)
	// best[j] = max benefit with capacity j; choice tracking via parent
	// bitsets would be heavy, so keep full table for n small.
	best := make([][]float64, n+1)
	for i := range best {
		best[i] = make([]float64, w+1)
	}
	for i := 1; i <= n; i++ {
		c := int(items[i-1].Cost)
		b := items[i-1].Benefit
		for j := 0; j <= w; j++ {
			best[i][j] = best[i-1][j]
			if c <= j && best[i-1][j-c]+b > best[i][j] {
				best[i][j] = best[i-1][j-c] + b
			}
		}
	}
	// Trace back.
	var picked []int
	j := w
	for i := n; i >= 1; i-- {
		if best[i][j] != best[i-1][j] {
			picked = append(picked, i-1)
			j -= int(items[i-1].Cost)
		}
	}
	sort.Ints(picked)
	return picked
}

// DPScaled buckets costs into at most maxUnits budget units and solves
// exactly on the scaled instance. With maxUnits ~ 1000 the result is a
// near-optimal selection even for profiles with millions of dynamic
// instructions.
func DPScaled(items []Item, budget int64, maxUnits int) []int {
	if budget <= 0 {
		return nil
	}
	if budget <= int64(maxUnits) {
		return DP(items, budget)
	}
	scale := (budget + int64(maxUnits) - 1) / int64(maxUnits)
	scaled := make([]Item, len(items))
	for i, it := range items {
		scaled[i] = Item{
			Benefit: it.Benefit,
			// Round cost up so the scaled solution never exceeds the
			// true budget.
			Cost: (it.Cost + scale - 1) / scale,
		}
	}
	return DP(scaled, budget/scale)
}

// TotalCost sums the cost of the selected indices.
func TotalCost(items []Item, picked []int) int64 {
	var t int64
	for _, i := range picked {
		t += items[i].Cost
	}
	return t
}

// TotalBenefit sums the benefit of the selected indices.
func TotalBenefit(items []Item, picked []int) float64 {
	var t float64
	for _, i := range picked {
		t += items[i].Benefit
	}
	return t
}
