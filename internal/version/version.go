// Package version derives a build identity string from the information
// the Go toolchain embeds in every binary (runtime/debug.ReadBuildInfo),
// so `flowery -version`, `experiments -version`, `floweryd -version`,
// and the daemon's /healthz all report the same provenance without a
// hand-maintained constant or linker flags.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
)

// String renders the build identity: module version when the binary was
// built from a tagged module, otherwise the VCS revision (short hash,
// "+dirty" when the working tree had modifications), and always the Go
// toolchain version. A binary built outside module/VCS context reports
// "devel".
func String() string {
	ident := "devel"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			ident = v
		} else if rev := vcsIdent(bi); rev != "" {
			ident = rev
		}
	}
	return fmt.Sprintf("%s (%s)", ident, runtime.Version())
}

func vcsIdent(bi *debug.BuildInfo) string {
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}

// Line renders the one-line form the binaries print for -version:
// "<prog> <identity>".
func Line(prog string) string {
	return strings.TrimSpace(prog) + " " + String()
}
