package ir

import (
	"strings"
	"testing"
)

// wellFormed builds a small valid module used as the mutation baseline.
func wellFormed() *Module {
	m := NewModule("t")
	f := m.NewFunction("main", I64)
	b := NewBuilder(f)
	slot := b.AllocVar(I64)
	b.Store(ConstInt(I64, 1), slot)
	v := b.Load(I64, slot)
	w := b.Add(v, ConstInt(I64, 2))
	c := b.ICmp(PredSLT, w, ConstInt(I64, 10))
	thenB := b.NewBlock("then")
	elseB := b.NewBlock("else")
	b.CondBr(c, thenB, elseB)
	b.SetBlock(thenB)
	b.Ret(w)
	b.SetBlock(elseB)
	b.Ret(ConstInt(I64, 0))
	return m
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	if err := wellFormed().Verify(); err != nil {
		t.Fatalf("well-formed module rejected: %v", err)
	}
}

// Each mutation must be caught by the verifier with a message containing
// the expected fragment.
func TestVerifyRejectsMutations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(m *Module)
		want   string
	}{
		{
			"missing terminator in entry",
			func(m *Module) {
				entry := m.Func("main").Entry()
				entry.Remove(len(entry.Instrs) - 1)
			},
			"terminator",
		},
		{
			"empty block",
			func(m *Module) {
				m.Func("main").NewBlock("empty")
			},
			"empty",
		},
		{
			"terminator in middle",
			func(m *Module) {
				entry := m.Func("main").Entry()
				entry.InsertAt(2, &Instr{Op: OpRet, Ty: Void, Args: []Value{ConstInt(I64, 0)}})
			},
			"terminator",
		},
		{
			"block emptied",
			func(m *Module) {
				f := m.Func("main")
				last := f.Blocks[1]
				last.Remove(len(last.Instrs) - 1)
			},
			"empty",
		},
		{
			"alloca outside entry",
			func(m *Module) {
				f := m.Func("main")
				f.Blocks[1].InsertAt(0, &Instr{Op: OpAlloca, Ty: Ptr, Aux: 8})
			},
			"alloca outside entry",
		},
		{
			"branch to entry",
			func(m *Module) {
				f := m.Func("main")
				thenB := f.Blocks[1]
				thenB.Instrs[len(thenB.Instrs)-1] = &Instr{Op: OpBr, Ty: Void, Blocks: []*Block{f.Blocks[0]}}
			},
			"entry",
		},
		{
			"type mismatch in binop",
			func(m *Module) {
				entry := m.Func("main").Entry()
				for _, in := range entry.Instrs {
					if in.Op == OpAdd {
						in.Args[1] = ConstInt(I32, 2)
					}
				}
			},
			"operands",
		},
		{
			"store of void value",
			func(m *Module) {
				entry := m.Func("main").Entry()
				for _, in := range entry.Instrs {
					if in.Op == OpStore {
						in.Args[0] = &Instr{Op: OpStore, Ty: Void}
					}
				}
			},
			"",
		},
		{
			"condbr with non-bool",
			func(m *Module) {
				entry := m.Func("main").Entry()
				t := entry.Terminator()
				t.Args[0] = ConstInt(I64, 1)
			},
			"condbr",
		},
		{
			"ret of wrong type",
			func(m *Module) {
				f := m.Func("main")
				last := f.Blocks[2]
				last.Instrs[len(last.Instrs)-1].Args[0] = ConstFloat(1)
			},
			"ret",
		},
		{
			"use before def",
			func(m *Module) {
				f := m.Func("main")
				entry := f.Entry()
				// Make the add use a value defined in a later block.
				late := &Instr{Op: OpAdd, Ty: I64, Args: []Value{ConstInt(I64, 1), ConstInt(I64, 1)}}
				f.Blocks[1].InsertAt(0, late)
				for _, in := range entry.Instrs {
					if in.Op == OpICmp {
						in.Args[0] = late
					}
				}
			},
			"dominated",
		},
		{
			"call arity mismatch",
			func(m *Module) {
				f := m.Func("main")
				entry := f.Entry()
				pi := m.Func("print_i64")
				entry.InsertAt(len(entry.Instrs)-1, &Instr{Op: OpCall, Ty: Void, Callee: pi})
			},
			"args",
		},
		{
			"gep with bad element size",
			func(m *Module) {
				f := m.Func("main")
				entry := f.Entry()
				var slot *Instr
				for _, in := range entry.Instrs {
					if in.Op == OpAlloca {
						slot = in
					}
				}
				bad := &Instr{Op: OpGEP, Ty: Ptr, Aux: 0, Args: []Value{slot, ConstInt(I64, 0)}}
				entry.InsertAt(len(entry.Instrs)-1, bad)
				entry.Terminator() // keep structure
				// Give it a use so DCE-style reasoning doesn't apply.
				_ = bad
			},
			"element size",
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := wellFormed()
			c.mutate(m)
			err := m.Verify()
			if err == nil {
				t.Fatalf("mutation %q not caught", c.name)
			}
			if c.want != "" && !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestVerifyRequiresMain(t *testing.T) {
	m := NewModule("nomain")
	f := m.NewFunction("helper", Void)
	b := NewBuilder(f)
	b.Ret(nil)
	err := m.Verify()
	if err == nil || !strings.Contains(err.Error(), "no @main") {
		t.Fatalf("missing main not caught: %v", err)
	}
}

func TestVerifyCatchesCrossFunctionUse(t *testing.T) {
	m := NewModule("x")
	f1 := m.NewFunction("helper", I64)
	b1 := NewBuilder(f1)
	v := b1.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	b1.Ret(v)

	f2 := m.NewFunction("main", I64)
	b2 := NewBuilder(f2)
	b2.Ret(b2.Add(v, ConstInt(I64, 1))) // v belongs to f1!
	if err := m.Verify(); err == nil {
		t.Fatal("cross-function operand not caught")
	}
}

func TestVerifyCatchesForeignBlockTarget(t *testing.T) {
	m := NewModule("x")
	f1 := m.NewFunction("helper", Void)
	b1 := NewBuilder(f1)
	b1.Ret(nil)

	f2 := m.NewFunction("main", I64)
	b2 := NewBuilder(f2)
	foreign := f1.Entry()
	b2.Block().Append(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{foreign}})
	if err := m.Verify(); err == nil {
		t.Fatal("branch to foreign block not caught")
	}
}
