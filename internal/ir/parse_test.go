package ir

import (
	"strings"
	"testing"
)

func TestPrintParseRoundTrip(t *testing.T) {
	m := wellFormed()
	m.NewGlobalI64("data", []int64{1, -2, 3})
	m.NewGlobalData("raw", []byte{0xde, 0xad})
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	text1 := m.String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text1)
	}
	if err := m2.Verify(); err != nil {
		t.Fatalf("reparsed module invalid: %v", err)
	}
	text2 := m2.String()
	if text1 != text2 {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestParseAllConstructs(t *testing.T) {
	src := `
module everything

global @g 16 = 0102030405060708090a0b0c0d0e0f10
global @z 8

func @helper(i64 %a, f64 %b) f64 {
entry:
  %0 = sitofp %a to f64
  %1 = fadd f64 %0, %b
  ret %1
}

func @main() i64 {
entry:
  %0 = alloca 8
  store i64 -5, %0
  %1 = load i64, %0
  %2 = add i64 %1, i64 7
  %3 = sub i64 %2, i64 1
  %4 = mul i64 %3, i64 3
  %5 = sdiv i64 %4, i64 2
  %6 = srem i64 %5, i64 10
  %7 = and i64 %6, i64 255
  %8 = or i64 %7, i64 16
  %9 = xor i64 %8, i64 5
  %10 = shl i64 %9, i64 2
  %11 = ashr i64 %10, i64 1
  %12 = lshr i64 %11, i64 1
  %13 = gep @g, %12, 1
  %14 = load i8, %13
  %15 = sext %14 to i64
  %16 = trunc %15 to i32
  %17 = zext %16 to i64
  %18 = icmp slt %17, i64 100
  condbr %18, label %yes, label %no
yes:
  %19 = call f64 @helper(%17, f64 2.5)
  %20 = fcmp ogt %19, f64 0.0
  %21 = zext %20 to i64
  call void @print_i64(%21)
  br label %done
no:
  call void @print_i64(i64 -1)
  br label %done
done:
  ret i64 0
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if g := m.Global("g"); g == nil || g.Size != 16 || len(g.Init) != 16 {
		t.Fatalf("global g mishandled: %+v", g)
	}
	// Round-trip stability for the full construct set.
	m2 := MustParse(m.String())
	if m.String() != m2.String() {
		t.Fatal("full-construct module not print-stable")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no module header", "func @main() i64 {\nentry:\n  ret i64 0\n}\n", "module"},
		{"unknown op", "module m\nfunc @main() i64 {\nentry:\n  %0 = frobnicate i64 1, i64 2\n  ret i64 0\n}\n", "unknown opcode"},
		{"undefined value", "module m\nfunc @main() i64 {\nentry:\n  ret %7\n}\n", "undefined"},
		{"unknown global", "module m\nfunc @main() i64 {\nentry:\n  %0 = load i64, @nope\n  ret %0\n}\n", "unknown global"},
		{"unknown callee", "module m\nfunc @main() i64 {\nentry:\n  call void @nothere()\n  ret i64 0\n}\n", "unknown function"},
		{"duplicate function", "module m\nfunc @main() i64 {\nentry:\n  ret i64 0\n}\nfunc @main() i64 {\nentry:\n  ret i64 0\n}\n", "duplicate"},
		{"bad global initializer", "module m\nglobal @g 4 = zz\nfunc @main() i64 {\nentry:\n  ret i64 0\n}\n", "initializer"},
		{"unterminated function", "module m\nfunc @main() i64 {\nentry:\n  ret i64 0\n", "unterminated"},
		{"result id on void", "module m\nfunc @main() i64 {\nentry:\n  %0 = store i64 1, i64 2\n  ret i64 0\n}\n", "void"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("parse accepted bad input")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := `
module m ; trailing comment
; full-line comment
func @main() i64 {
entry:
  ret i64 42 ; the answer
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("comments broke the parser: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestParseForwardFunctionReference(t *testing.T) {
	src := `
module m
func @main() i64 {
entry:
  %0 = call i64 @later()
  ret %0
}
func @later() i64 {
entry:
  ret i64 9
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("forward reference: %v", err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}
