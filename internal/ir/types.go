// Package ir defines the intermediate representation used throughout the
// repository: an SSA-lite IR closely modeled on the shape clang emits at
// -O0 (alloca/load/store chains, no phi nodes), which is the compilation
// mode studied by the paper. Programs are built with a Builder, checked by
// Verify, executed by package interp, and lowered to assembly by package
// backend.
package ir

import "fmt"

// Type enumerates the primitive value types of the IR. There are no
// aggregate first-class values; arrays and structs live in memory behind
// pointers, exactly as in clang -O0 output.
type Type uint8

const (
	// Void is the type of instructions that produce no value
	// (store, br, condbr, ret, calls to void functions).
	Void Type = iota
	// I1 is a boolean (comparison results, branch conditions).
	I1
	// I8 is a byte (characters, raw memory).
	I8
	// I32 is a 32-bit signed integer.
	I32
	// I64 is a 64-bit signed integer.
	I64
	// F64 is an IEEE-754 double.
	F64
	// Ptr is a 64-bit address.
	Ptr
)

// Size returns the in-memory size of the type in bytes. Void has size 0.
func (t Type) Size() int64 {
	switch t {
	case I1, I8:
		return 1
	case I32:
		return 4
	case I64, F64, Ptr:
		return 8
	default:
		return 0
	}
}

// Bits returns the significant bit width of the type. Fault injection at
// IR level flips a uniformly random bit among these.
func (t Type) Bits() int {
	switch t {
	case I1:
		return 1
	case I8:
		return 8
	case I32:
		return 32
	case I64, F64, Ptr:
		return 64
	default:
		return 0
	}
}

// IsInt reports whether t is an integer type (including I1).
func (t Type) IsInt() bool {
	return t == I1 || t == I8 || t == I32 || t == I64
}

// IsFloat reports whether t is a floating-point type.
func (t Type) IsFloat() bool { return t == F64 }

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I1:
		return "i1"
	case I8:
		return "i8"
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F64:
		return "f64"
	case Ptr:
		return "ptr"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// TypeFromString parses a type name as printed by Type.String.
func TypeFromString(s string) (Type, bool) {
	switch s {
	case "void":
		return Void, true
	case "i1":
		return I1, true
	case "i8":
		return I8, true
	case "i32":
		return I32, true
	case "i64":
		return I64, true
	case "f64":
		return F64, true
	case "ptr":
		return Ptr, true
	}
	return Void, false
}
