package ir

import (
	"fmt"
	"strings"
)

// String renders the module in the textual IR format understood by Parse.
// The format is LLVM-flavoured but simplified; see parse.go for the
// grammar.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s\n\n", m.Name)
	for _, g := range m.Globals {
		printGlobal(&sb, g)
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		printFunc(&sb, f)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func printGlobal(sb *strings.Builder, g *Global) {
	fmt.Fprintf(sb, "global @%s %d", g.Name, g.Size)
	if len(g.Init) > 0 {
		sb.WriteString(" = ")
		for _, b := range g.Init {
			fmt.Fprintf(sb, "%02x", b)
		}
	}
	sb.WriteByte('\n')
}

func printFunc(sb *strings.Builder, f *Function) {
	f.Renumber()
	fmt.Fprintf(sb, "func @%s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(sb, "%s %%%s", p.Ty, p.Name)
	}
	fmt.Fprintf(sb, ") %s {\n", f.RetType)
	for _, b := range f.Blocks {
		fmt.Fprintf(sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
}

// String renders a single instruction in textual form. The containing
// function must have been renumbered for operand names to be stable.
func (in *Instr) String() string {
	var sb strings.Builder
	if in.HasResult() {
		fmt.Fprintf(&sb, "%s = ", in.OperandString())
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&sb, "alloca %d", in.Aux)
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Ty, in.Args[0].OperandString())
	case OpStore:
		fmt.Fprintf(&sb, "store %s, %s", in.Args[0].OperandString(), in.Args[1].OperandString())
	case OpICmp, OpFCmp:
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Pred, in.Args[0].OperandString(), in.Args[1].OperandString())
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s, %d", in.Args[0].OperandString(), in.Args[1].OperandString(), in.Aux)
	case OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI:
		fmt.Fprintf(&sb, "%s %s to %s", in.Op, in.Args[0].OperandString(), in.Ty)
	case OpCall:
		fmt.Fprintf(&sb, "call %s @%s(", in.Ty, in.Callee.Name)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(a.OperandString())
		}
		sb.WriteByte(')')
	case OpBr:
		fmt.Fprintf(&sb, "br label %%%s", in.Blocks[0].Name)
	case OpCondBr:
		fmt.Fprintf(&sb, "condbr %s, label %%%s, label %%%s",
			in.Args[0].OperandString(), in.Blocks[0].Name, in.Blocks[1].Name)
	case OpRet:
		if len(in.Args) == 1 {
			fmt.Fprintf(&sb, "ret %s", in.Args[0].OperandString())
		} else {
			sb.WriteString("ret")
		}
	default:
		if in.Op.IsBinOp() {
			fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Ty, in.Args[0].OperandString(), in.Args[1].OperandString())
		} else {
			fmt.Fprintf(&sb, "%s ???", in.Op)
		}
	}
	// Protection annotations are comments so the format stays parseable;
	// the parser re-derives nothing from them.
	var notes []string
	if in.Prot.IsDup {
		notes = append(notes, "dup")
	}
	if in.Prot.IsChecker {
		notes = append(notes, "checker")
	}
	if in.Prot.IsFlowery {
		notes = append(notes, "flowery")
	}
	if len(notes) > 0 {
		fmt.Fprintf(&sb, "  ; %s", strings.Join(notes, ","))
	}
	return sb.String()
}
