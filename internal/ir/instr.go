package ir

import "fmt"

// Op enumerates IR instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero value; no valid instruction carries it.
	OpInvalid Op = iota

	// OpAlloca reserves Aux bytes in the current frame and yields a Ptr.
	OpAlloca
	// OpLoad reads a value of the instruction's type from Args[0] (Ptr).
	OpLoad
	// OpStore writes Args[0] to the address Args[1]. No result.
	OpStore

	// Integer arithmetic. Operands and result share one integer type.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpSRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpAShr
	OpLShr

	// Floating-point arithmetic (F64).
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv

	// OpICmp compares two integer operands with Pred, yielding I1.
	OpICmp
	// OpFCmp compares two F64 operands with Pred, yielding I1.
	OpFCmp

	// OpGEP computes Args[0] + Args[1]*Aux (pointer arithmetic with a
	// constant element size), yielding Ptr.
	OpGEP

	// Casts. The result type is the instruction type.
	OpTrunc
	OpZExt
	OpSExt
	OpSIToFP
	OpFPToSI

	// OpCall invokes Callee with Args. Result type is the callee's
	// return type (possibly Void).
	OpCall

	// Terminators.
	OpBr     // unconditional: Blocks[0]
	OpCondBr // Args[0] is the I1 condition; Blocks[0] taken, Blocks[1] not
	OpRet    // optional Args[0]
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAlloca:  "alloca",
	OpLoad:    "load",
	OpStore:   "store",
	OpAdd:     "add",
	OpSub:     "sub",
	OpMul:     "mul",
	OpSDiv:    "sdiv",
	OpSRem:    "srem",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpAShr:    "ashr",
	OpLShr:    "lshr",
	OpFAdd:    "fadd",
	OpFSub:    "fsub",
	OpFMul:    "fmul",
	OpFDiv:    "fdiv",
	OpICmp:    "icmp",
	OpFCmp:    "fcmp",
	OpGEP:     "gep",
	OpTrunc:   "trunc",
	OpZExt:    "zext",
	OpSExt:    "sext",
	OpSIToFP:  "sitofp",
	OpFPToSI:  "fptosi",
	OpCall:    "call",
	OpBr:      "br",
	OpCondBr:  "condbr",
	OpRet:     "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// OpFromString maps an opcode mnemonic back to its Op.
func OpFromString(s string) (Op, bool) {
	for i, n := range opNames {
		if n == s && Op(i) != OpInvalid {
			return Op(i), true
		}
	}
	return OpInvalid, false
}

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpCondBr || o == OpRet }

// IsBinOp reports whether the opcode is a two-operand arithmetic or
// bitwise operation (integer or float).
func (o Op) IsBinOp() bool { return o >= OpAdd && o <= OpFDiv }

// IsCast reports whether the opcode converts between types.
func (o Op) IsCast() bool { return o >= OpTrunc && o <= OpFPToSI }

// IsPure reports whether the instruction has no side effects and its
// result depends only on its operands (candidates for CSE/folding).
// Loads are excluded: their purity depends on intervening stores.
func (o Op) IsPure() bool {
	return o.IsBinOp() || o.IsCast() || o == OpICmp || o == OpFCmp || o == OpGEP
}

// Pred enumerates comparison predicates for OpICmp and OpFCmp.
type Pred uint8

const (
	PredNone Pred = iota
	// Integer predicates (signed unless prefixed with U).
	PredEQ
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	PredULT
	PredULE
	PredUGT
	PredUGE
	// Ordered float predicates.
	PredOEQ
	PredONE
	PredOLT
	PredOLE
	PredOGT
	PredOGE
)

var predNames = [...]string{
	PredNone: "none",
	PredEQ:   "eq", PredNE: "ne",
	PredSLT: "slt", PredSLE: "sle", PredSGT: "sgt", PredSGE: "sge",
	PredULT: "ult", PredULE: "ule", PredUGT: "ugt", PredUGE: "uge",
	PredOEQ: "oeq", PredONE: "one",
	PredOLT: "olt", PredOLE: "ole", PredOGT: "ogt", PredOGE: "oge",
}

func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// PredFromString maps a predicate mnemonic back to its Pred.
func PredFromString(s string) (Pred, bool) {
	for i, n := range predNames {
		if n == s && Pred(i) != PredNone {
			return Pred(i), true
		}
	}
	return PredNone, false
}

// IsFloatPred reports whether the predicate belongs to fcmp.
func (p Pred) IsFloatPred() bool { return p >= PredOEQ }

// Protection metadata attached to instructions by the duplication and
// Flowery passes. It travels to the backend so emitted assembly can be
// tagged with provenance for root-cause classification.
type ProtMeta struct {
	// IsDup marks an instruction as the redundant copy of Orig.
	IsDup bool
	// Orig points from a duplicate to the primary copy.
	Orig *Instr
	// Dup points from a primary copy to its duplicate.
	Dup *Instr
	// IsChecker marks comparison/branch instructions inserted by the
	// duplication pass to detect divergence between the two copies.
	IsChecker bool
	// IsFlowery marks instructions inserted by a Flowery patch.
	IsFlowery bool
}

// Instr is a single IR instruction. Instructions producing a value
// implement Value and are referred to by pointer identity.
type Instr struct {
	Op   Op
	Ty   Type // result type; Void for store/br/condbr/ret and void calls
	Pred Pred // icmp/fcmp only

	// Args are the value operands. Layout by opcode:
	//   load:   [ptr]
	//   store:  [val, ptr]
	//   binop:  [lhs, rhs]
	//   icmp:   [lhs, rhs]
	//   gep:    [base, index]
	//   cast:   [val]
	//   call:   args...
	//   condbr: [cond]
	//   ret:    [val] or []
	Args []Value

	// Blocks are the successor blocks of terminators:
	//   br:     [target]
	//   condbr: [ifTrue, ifFalse]
	Blocks []*Block

	// Callee is the called function for OpCall.
	Callee *Function

	// Aux carries the allocation size for OpAlloca and the element size
	// for OpGEP.
	Aux int64

	// Prot carries protection metadata (duplication, checkers, Flowery).
	Prot ProtMeta

	// Parent is the containing block; maintained by Block methods.
	Parent *Block

	// ID is the per-function SSA number used for printing. Assigned by
	// Function.Renumber; -1 when unassigned.
	ID int
}

// Type implements Value.
func (in *Instr) Type() Type { return in.Ty }

// OperandString implements Value.
func (in *Instr) OperandString() string {
	if in.ID >= 0 {
		return fmt.Sprintf("%%%d", in.ID)
	}
	return fmt.Sprintf("%%<%p>", in)
}

// HasResult reports whether the instruction produces a value. Only
// instructions with results are IR-level fault-injection sites, matching
// the paper's fault model (stores, branches, and void calls have no
// destination register at IR level).
func (in *Instr) HasResult() bool { return in.Ty != Void }

// Function is a procedure: a parameter list, a return type, and (unless
// external) a list of basic blocks, the first of which is the entry.
type Function struct {
	Name    string
	Params  []*Param
	RetType Type
	Blocks  []*Block

	// External marks runtime/intrinsic functions that have no IR body
	// and are executed natively by the interpreter and simulator
	// (e.g. sqrt, print_i64, check_fail).
	External bool

	// Module is the containing module.
	Module *Module

	nextBlockID int
}

// Entry returns the entry block, or nil for external functions.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new empty block with the given name hint. A unique
// suffix is added if the name is empty or already taken.
func (f *Function) NewBlock(name string) *Block {
	if name == "" {
		name = fmt.Sprintf("bb%d", f.nextBlockID)
	} else {
		for _, b := range f.Blocks {
			if b.Name == name {
				name = fmt.Sprintf("%s.%d", name, f.nextBlockID)
				break
			}
		}
	}
	f.nextBlockID++
	b := &Block{Name: name, Func: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Renumber assigns sequential IDs to all value-producing instructions and
// refreshes Parent links. Printing and verification call it implicitly.
func (f *Function) Renumber() {
	id := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.Parent = b
			if in.HasResult() {
				in.ID = id
				id++
			} else {
				in.ID = -1
			}
		}
	}
}

// NumInstrs returns the number of static instructions in the body.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Block is a basic block: a named, ordered instruction list ending (in
// verified functions) with exactly one terminator.
type Block struct {
	Name   string
	Func   *Function
	Instrs []*Instr
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(in *Instr) *Instr {
	in.Parent = b
	in.ID = -1
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertAt places an instruction at index i, shifting later instructions.
func (b *Block) InsertAt(i int, in *Instr) {
	in.Parent = b
	in.ID = -1
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Index returns the position of in within the block, or -1.
func (b *Block) Index(in *Instr) int {
	for i, x := range b.Instrs {
		if x == in {
			return i
		}
	}
	return -1
}

// Remove deletes the instruction at index i.
func (b *Block) Remove(i int) {
	copy(b.Instrs[i:], b.Instrs[i+1:])
	b.Instrs = b.Instrs[:len(b.Instrs)-1]
}

// Terminator returns the final instruction if it is a terminator, else nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	return t.Blocks
}

// OperandString lets blocks appear as label operands in printing.
func (b *Block) String() string { return "%" + b.Name }
