package ir

import "fmt"

// Builder provides a convenient, type-checked way to construct function
// bodies. It appends instructions to a current block, in the style of
// llvm::IRBuilder. All benchmark programs in internal/bench are written
// against this API.
type Builder struct {
	Func *Function
	cur  *Block
}

// NewBuilder returns a builder positioned at a fresh entry block of f
// (creating one if the function is empty).
func NewBuilder(f *Function) *Builder {
	b := &Builder{Func: f}
	if len(f.Blocks) == 0 {
		b.cur = f.NewBlock("entry")
	} else {
		b.cur = f.Blocks[len(f.Blocks)-1]
	}
	return b
}

// Block returns the current insertion block.
func (b *Builder) Block() *Block { return b.cur }

// SetBlock moves the insertion point to the end of blk.
func (b *Builder) SetBlock(blk *Block) { b.cur = blk }

// NewBlock creates a block in the function without moving the insertion
// point.
func (b *Builder) NewBlock(name string) *Block { return b.Func.NewBlock(name) }

func (b *Builder) emit(in *Instr) *Instr {
	if b.cur == nil {
		panic("ir.Builder: no current block")
	}
	if t := b.cur.Terminator(); t != nil {
		panic(fmt.Sprintf("ir.Builder: emitting %s after terminator in block %s", in.Op, b.cur.Name))
	}
	return b.cur.Append(in)
}

// Alloca reserves size bytes of frame storage. Like clang, the builder
// hoists all allocas into the entry block so each function invocation has
// a statically-sized frame (the verifier enforces this, and both
// execution engines and the backend precompute frame layouts from it).
func (b *Builder) Alloca(size int64) *Instr {
	entry := b.Func.Entry()
	if entry == nil {
		panic("ir.Builder: alloca before entry block exists")
	}
	in := &Instr{Op: OpAlloca, Ty: Ptr, Aux: size}
	// Insert after any existing leading allocas.
	i := 0
	for i < len(entry.Instrs) && entry.Instrs[i].Op == OpAlloca {
		i++
	}
	entry.InsertAt(i, in)
	return in
}

// Load reads a value of type ty from ptr.
func (b *Builder) Load(ty Type, ptr Value) *Instr {
	mustType("load address", ptr, Ptr)
	return b.emit(&Instr{Op: OpLoad, Ty: ty, Args: []Value{ptr}})
}

// Store writes val to ptr.
func (b *Builder) Store(val, ptr Value) *Instr {
	mustType("store address", ptr, Ptr)
	return b.emit(&Instr{Op: OpStore, Ty: Void, Args: []Value{val, ptr}})
}

// Bin emits a two-operand arithmetic instruction. Result type follows the
// left operand.
func (b *Builder) Bin(op Op, x, y Value) *Instr {
	if !op.IsBinOp() {
		panic(fmt.Sprintf("ir.Builder: %s is not a binary op", op))
	}
	if x.Type() != y.Type() {
		panic(fmt.Sprintf("ir.Builder: %s operand types differ: %s vs %s", op, x.Type(), y.Type()))
	}
	return b.emit(&Instr{Op: op, Ty: x.Type(), Args: []Value{x, y}})
}

// Convenience arithmetic wrappers.

func (b *Builder) Add(x, y Value) *Instr  { return b.Bin(OpAdd, x, y) }
func (b *Builder) Sub(x, y Value) *Instr  { return b.Bin(OpSub, x, y) }
func (b *Builder) Mul(x, y Value) *Instr  { return b.Bin(OpMul, x, y) }
func (b *Builder) SDiv(x, y Value) *Instr { return b.Bin(OpSDiv, x, y) }
func (b *Builder) SRem(x, y Value) *Instr { return b.Bin(OpSRem, x, y) }
func (b *Builder) And(x, y Value) *Instr  { return b.Bin(OpAnd, x, y) }
func (b *Builder) Or(x, y Value) *Instr   { return b.Bin(OpOr, x, y) }
func (b *Builder) Xor(x, y Value) *Instr  { return b.Bin(OpXor, x, y) }
func (b *Builder) Shl(x, y Value) *Instr  { return b.Bin(OpShl, x, y) }
func (b *Builder) AShr(x, y Value) *Instr { return b.Bin(OpAShr, x, y) }
func (b *Builder) LShr(x, y Value) *Instr { return b.Bin(OpLShr, x, y) }
func (b *Builder) FAdd(x, y Value) *Instr { return b.Bin(OpFAdd, x, y) }
func (b *Builder) FSub(x, y Value) *Instr { return b.Bin(OpFSub, x, y) }
func (b *Builder) FMul(x, y Value) *Instr { return b.Bin(OpFMul, x, y) }
func (b *Builder) FDiv(x, y Value) *Instr { return b.Bin(OpFDiv, x, y) }

// ICmp compares integers with the given predicate.
func (b *Builder) ICmp(p Pred, x, y Value) *Instr {
	if p.IsFloatPred() || p == PredNone {
		panic(fmt.Sprintf("ir.Builder: bad icmp predicate %s", p))
	}
	if x.Type() != y.Type() || !x.Type().IsInt() && x.Type() != Ptr {
		panic(fmt.Sprintf("ir.Builder: icmp operand types %s, %s", x.Type(), y.Type()))
	}
	return b.emit(&Instr{Op: OpICmp, Ty: I1, Pred: p, Args: []Value{x, y}})
}

// FCmp compares floats with the given predicate.
func (b *Builder) FCmp(p Pred, x, y Value) *Instr {
	if !p.IsFloatPred() {
		panic(fmt.Sprintf("ir.Builder: bad fcmp predicate %s", p))
	}
	if x.Type() != F64 || y.Type() != F64 {
		panic("ir.Builder: fcmp needs f64 operands")
	}
	return b.emit(&Instr{Op: OpFCmp, Ty: I1, Pred: p, Args: []Value{x, y}})
}

// GEP computes base + index*elemSize.
func (b *Builder) GEP(base Value, index Value, elemSize int64) *Instr {
	mustType("gep base", base, Ptr)
	if index.Type() != I64 {
		panic("ir.Builder: gep index must be i64")
	}
	return b.emit(&Instr{Op: OpGEP, Ty: Ptr, Aux: elemSize, Args: []Value{base, index}})
}

// Cast emits a conversion to the target type.
func (b *Builder) Cast(op Op, to Type, v Value) *Instr {
	if !op.IsCast() {
		panic(fmt.Sprintf("ir.Builder: %s is not a cast", op))
	}
	return b.emit(&Instr{Op: op, Ty: to, Args: []Value{v}})
}

// Convenience cast wrappers.

func (b *Builder) Trunc(to Type, v Value) *Instr { return b.Cast(OpTrunc, to, v) }
func (b *Builder) ZExt(to Type, v Value) *Instr  { return b.Cast(OpZExt, to, v) }
func (b *Builder) SExt(to Type, v Value) *Instr  { return b.Cast(OpSExt, to, v) }
func (b *Builder) SIToFP(v Value) *Instr         { return b.Cast(OpSIToFP, F64, v) }
func (b *Builder) FPToSI(to Type, v Value) *Instr {
	return b.Cast(OpFPToSI, to, v)
}

// Call invokes callee with the given arguments.
func (b *Builder) Call(callee *Function, args ...Value) *Instr {
	if callee == nil {
		panic("ir.Builder: nil callee")
	}
	if len(args) != len(callee.Params) {
		panic(fmt.Sprintf("ir.Builder: call %s: %d args, want %d", callee.Name, len(args), len(callee.Params)))
	}
	for i, a := range args {
		if a.Type() != callee.Params[i].Ty {
			panic(fmt.Sprintf("ir.Builder: call %s arg %d: %s, want %s", callee.Name, i, a.Type(), callee.Params[i].Ty))
		}
	}
	return b.emit(&Instr{Op: OpCall, Ty: callee.RetType, Callee: callee, Args: args})
}

// CallNamed invokes a function looked up by name in the module.
func (b *Builder) CallNamed(name string, args ...Value) *Instr {
	f := b.Func.Module.Func(name)
	if f == nil {
		panic(fmt.Sprintf("ir.Builder: unknown function %q", name))
	}
	return b.Call(f, args...)
}

// Br ends the block with an unconditional branch.
func (b *Builder) Br(target *Block) *Instr {
	return b.emit(&Instr{Op: OpBr, Ty: Void, Blocks: []*Block{target}})
}

// CondBr ends the block with a conditional branch.
func (b *Builder) CondBr(cond Value, ifTrue, ifFalse *Block) *Instr {
	mustType("condbr condition", cond, I1)
	return b.emit(&Instr{Op: OpCondBr, Ty: Void, Args: []Value{cond}, Blocks: []*Block{ifTrue, ifFalse}})
}

// Ret ends the block with a return; v may be nil for void functions.
func (b *Builder) Ret(v Value) *Instr {
	if v == nil {
		return b.emit(&Instr{Op: OpRet, Ty: Void})
	}
	return b.emit(&Instr{Op: OpRet, Ty: Void, Args: []Value{v}})
}

// I32Const, I64Const, F64Const are shorthands for constants.

func (b *Builder) I32Const(v int64) *Const   { return ConstInt(I32, v) }
func (b *Builder) I64Const(v int64) *Const   { return ConstInt(I64, v) }
func (b *Builder) F64Const(v float64) *Const { return ConstFloat(v) }

func mustType(what string, v Value, ty Type) {
	if v.Type() != ty {
		panic(fmt.Sprintf("ir.Builder: %s must be %s, got %s", what, ty, v.Type()))
	}
}

// --- Higher-level helpers used heavily by the benchmark programs ---

// AllocVar allocates a frame slot for one value of type ty and returns
// its address.
func (b *Builder) AllocVar(ty Type) *Instr { return b.Alloca(ty.Size()) }

// LoadElem loads array[index] where the array holds elements of type ty.
func (b *Builder) LoadElem(ty Type, base Value, index Value) *Instr {
	p := b.GEP(base, index, ty.Size())
	return b.Load(ty, p)
}

// StoreElem stores val to array[index].
func (b *Builder) StoreElem(ty Type, base Value, index Value, val Value) {
	p := b.GEP(base, index, ty.Size())
	b.Store(val, p)
}

// ForLoop emits a canonical counted loop:
//
//	for i = start; i < limit; i += step { body(i) }
//
// body receives the loop counter as an i64 value and must leave the
// builder in a block that falls through (it must not emit a terminator in
// its final block). ForLoop returns with the builder positioned in the
// exit block.
func (b *Builder) ForLoop(name string, start, limit, step Value, body func(i Value)) {
	iSlot := b.Alloca(8)
	b.Store(start, iSlot)
	cond := b.NewBlock(name + ".cond")
	bodyB := b.NewBlock(name + ".body")
	exit := b.NewBlock(name + ".exit")
	b.Br(cond)

	b.SetBlock(cond)
	i := b.Load(I64, iSlot)
	c := b.ICmp(PredSLT, i, limit)
	b.CondBr(c, bodyB, exit)

	b.SetBlock(bodyB)
	i2 := b.Load(I64, iSlot)
	body(i2)
	i3 := b.Load(I64, iSlot)
	b.Store(b.Add(i3, step), iSlot)
	b.Br(cond)

	b.SetBlock(exit)
}

// If emits an if/else diamond. Either arm may be nil. The builder is left
// in the join block.
func (b *Builder) If(cond Value, then func(), els func()) {
	thenB := b.NewBlock("if.then")
	joinB := b.NewBlock("if.join")
	elseB := joinB
	if els != nil {
		elseB = b.NewBlock("if.else")
	}
	b.CondBr(cond, thenB, elseB)

	b.SetBlock(thenB)
	if then != nil {
		then()
	}
	if b.cur.Terminator() == nil {
		b.Br(joinB)
	}
	if els != nil {
		b.SetBlock(elseB)
		els()
		if b.cur.Terminator() == nil {
			b.Br(joinB)
		}
	}
	b.SetBlock(joinB)
}

// While emits a while loop. cond is re-evaluated each iteration by the
// condFn callback (which must emit instructions computing an i1).
func (b *Builder) While(name string, condFn func() Value, body func()) {
	condB := b.NewBlock(name + ".cond")
	bodyB := b.NewBlock(name + ".body")
	exitB := b.NewBlock(name + ".exit")
	b.Br(condB)

	b.SetBlock(condB)
	c := condFn()
	b.CondBr(c, bodyB, exitB)

	b.SetBlock(bodyB)
	body()
	if b.cur.Terminator() == nil {
		b.Br(condB)
	}
	b.SetBlock(exitB)
}

// PrintI64 prints an integer via the runtime.
func (b *Builder) PrintI64(v Value) { b.CallNamed("print_i64", v) }

// PrintF64 prints a float via the runtime.
func (b *Builder) PrintF64(v Value) { b.CallNamed("print_f64", v) }

// PrintChar prints a single byte via the runtime.
func (b *Builder) PrintChar(c byte) {
	b.CallNamed("print_char", ConstInt(I64, int64(c)))
}

// PrintString prints each byte of s.
func (b *Builder) PrintString(s string) {
	for i := 0; i < len(s); i++ {
		b.PrintChar(s[i])
	}
}
