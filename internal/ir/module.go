package ir

import (
	"fmt"
	"sort"
)

// Memory layout constants shared by the IR interpreter and the assembly
// simulator so addresses mean the same thing at both layers. The address
// space is a flat little-endian byte array; address 0 is never mapped so
// nil-pointer dereferences trap.
// Addresses below GlobalBase, between the end of the data segment and
// StackLimit, and at or above StackTop are unmapped: accessing them traps,
// which is how corrupted pointers turn into DUEs (segmentation faults)
// rather than silent corruption.
const (
	// GlobalBase is the address of the first global.
	GlobalBase = 0x1000
	// StackTop is the initial stack pointer; frames grow downward.
	StackTop = 0x20_0000
	// StackLimit is the lowest legal stack address; crossing it traps
	// (stack overflow → DUE).
	StackLimit = 0x1c_0000
	// MemSize is the total size of the simulated address space.
	MemSize = StackTop
)

// Module is a translation unit: functions plus global data.
type Module struct {
	Name    string
	Funcs   []*Function
	Globals []*Global

	funcByName   map[string]*Function
	globalByName map[string]*Global

	// addrEnd memoizes AssignAddresses (0 = not yet assigned). Adding a
	// global invalidates it. The memo makes repeated engine construction
	// on a shared module read-only after the first assignment, so modules
	// cached by the artifact pipeline can back concurrent campaigns.
	addrEnd int64
}

// NewModule returns an empty module with the standard runtime functions
// (print/math intrinsics and the check_fail error handler) declared.
func NewModule(name string) *Module {
	m := &Module{
		Name:         name,
		funcByName:   make(map[string]*Function),
		globalByName: make(map[string]*Global),
	}
	for _, d := range runtimeDecls {
		f := &Function{Name: d.name, RetType: d.ret, External: true, Module: m}
		for i, pt := range d.params {
			f.Params = append(f.Params, &Param{Func: f, Index: i, Name: fmt.Sprintf("a%d", i), Ty: pt})
		}
		m.Funcs = append(m.Funcs, f)
		m.funcByName[d.name] = f
	}
	return m
}

// runtimeDecls lists the external functions every module starts with.
// They are executed natively by both the IR interpreter and the assembly
// simulator; at assembly level calls to them use the normal calling
// convention, so their argument setup is a call-penetration site like any
// other call.
var runtimeDecls = []struct {
	name   string
	params []Type
	ret    Type
}{
	{"print_i64", []Type{I64}, Void},
	{"print_f64", []Type{F64}, Void},
	{"print_char", []Type{I64}, Void},
	// check_fail terminates the run with outcome Detected. It is the
	// handler duplication checkers branch to on mismatch.
	{"check_fail", nil, Void},
	{"sqrt", []Type{F64}, F64},
	{"fabs", []Type{F64}, F64},
	{"sin", []Type{F64}, F64},
	{"cos", []Type{F64}, F64},
	{"exp", []Type{F64}, F64},
	{"log", []Type{F64}, F64},
	{"pow", []Type{F64, F64}, F64},
	{"floor", []Type{F64}, F64},
}

// IsRuntimeFunc reports whether name is one of the built-in externals.
func IsRuntimeFunc(name string) bool {
	for _, d := range runtimeDecls {
		if d.name == name {
			return true
		}
	}
	return false
}

// NewFunction creates an empty function with the given signature and adds
// it to the module. Parameter names default to p0, p1, ...
func (m *Module) NewFunction(name string, ret Type, paramTypes ...Type) *Function {
	f := &Function{Name: name, RetType: ret, Module: m}
	for i, pt := range paramTypes {
		f.Params = append(f.Params, &Param{Func: f, Index: i, Name: fmt.Sprintf("p%d", i), Ty: pt})
	}
	m.AddFunction(f)
	return f
}

// AddFunction registers f in the module. It panics on duplicate names:
// that is always a program-construction bug.
func (m *Module) AddFunction(f *Function) {
	if _, ok := m.funcByName[f.Name]; ok {
		panic(fmt.Sprintf("ir: duplicate function %q", f.Name))
	}
	f.Module = m
	m.Funcs = append(m.Funcs, f)
	m.funcByName[f.Name] = f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function { return m.funcByName[name] }

// NewGlobal creates a zero-initialized global of size bytes.
func (m *Module) NewGlobal(name string, size int64) *Global {
	return m.addGlobal(&Global{Name: name, Size: size})
}

// NewGlobalData creates a global initialized with the given bytes.
func (m *Module) NewGlobalData(name string, data []byte) *Global {
	init := make([]byte, len(data))
	copy(init, data)
	return m.addGlobal(&Global{Name: name, Size: int64(len(data)), Init: init})
}

// NewGlobalI64 creates a global holding little-endian 64-bit integers.
func (m *Module) NewGlobalI64(name string, vals []int64) *Global {
	data := make([]byte, 8*len(vals))
	for i, v := range vals {
		putLE(data[8*i:], uint64(v), 8)
	}
	return m.addGlobal(&Global{Name: name, Size: int64(len(data)), Init: data})
}

// NewGlobalI32 creates a global holding little-endian 32-bit integers.
func (m *Module) NewGlobalI32(name string, vals []int32) *Global {
	data := make([]byte, 4*len(vals))
	for i, v := range vals {
		putLE(data[4*i:], uint64(uint32(v)), 4)
	}
	return m.addGlobal(&Global{Name: name, Size: int64(len(data)), Init: data})
}

// NewGlobalF64 creates a global holding little-endian float64 values.
func (m *Module) NewGlobalF64(name string, vals []float64) *Global {
	data := make([]byte, 8*len(vals))
	for i, v := range vals {
		putLE(data[8*i:], float64Bits(v), 8)
	}
	return m.addGlobal(&Global{Name: name, Size: int64(len(data)), Init: data})
}

func (m *Module) addGlobal(g *Global) *Global {
	if _, ok := m.globalByName[g.Name]; ok {
		panic(fmt.Sprintf("ir: duplicate global %q", g.Name))
	}
	m.Globals = append(m.Globals, g)
	m.globalByName[g.Name] = g
	m.addrEnd = 0 // layout changed; next AssignAddresses recomputes
	return g
}

// Global returns the global with the given name, or nil.
func (m *Module) Global(name string) *Global { return m.globalByName[name] }

// AssignAddresses lays out all globals starting at GlobalBase, 16-byte
// aligned, and returns the end of the data segment. Both execution layers
// call this so a Ptr constant has one meaning everywhere.
//
// The layout is memoized: after one call (and until a global is added),
// further calls only read, so engines may be constructed concurrently on
// a shared module as long as something assigned its addresses first.
func (m *Module) AssignAddresses() int64 {
	if m.addrEnd != 0 {
		return m.addrEnd
	}
	addr := int64(GlobalBase)
	for _, g := range m.Globals {
		g.Addr = addr
		addr += g.Size
		addr = (addr + 15) &^ 15
	}
	m.addrEnd = addr
	return addr
}

// EnumerateInstrs returns every instruction of the module in canonical
// static order (function declaration order, block order, instruction
// order). The IR interpreter's profiling indices and the duplication
// pass's selection indices both refer to positions in this sequence, so
// a selection computed on one module applies to its clone.
func (m *Module) EnumerateInstrs() []*Instr {
	var out []*Instr
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			out = append(out, b.Instrs...)
		}
	}
	return out
}

// SortedFuncs returns non-external functions sorted by name, used by
// printers and passes that need deterministic iteration order.
func (m *Module) SortedFuncs() []*Function {
	var fs []*Function
	for _, f := range m.Funcs {
		if !f.External {
			fs = append(fs, f)
		}
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
	return fs
}

func putLE(b []byte, v uint64, n int) {
	for i := 0; i < n; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func float64Bits(f float64) uint64 {
	return ConstFloat(f).Bits
}
