package ir_test

import (
	"fmt"

	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/sim"
)

// ExampleBuilder shows the basic construction workflow: create a module,
// build a function with structured control flow, verify, and execute.
func ExampleBuilder() {
	m := ir.NewModule("example")
	f := m.NewFunction("main", ir.I64)
	b := ir.NewBuilder(f)

	// sum = Σ i for i in [0, 5)
	sum := b.AllocVar(ir.I64)
	b.Store(ir.ConstInt(ir.I64, 0), sum)
	b.ForLoop("i", ir.ConstInt(ir.I64, 0), ir.ConstInt(ir.I64, 5), ir.ConstInt(ir.I64, 1), func(i ir.Value) {
		b.Store(b.Add(b.Load(ir.I64, sum), i), sum)
	})
	v := b.Load(ir.I64, sum)
	b.PrintI64(v)
	b.Ret(v)

	if err := m.Verify(); err != nil {
		panic(err)
	}
	res := interp.New(m).Run(sim.Fault{}, sim.Options{})
	fmt.Printf("output: %sreturn: %d\n", res.Output, res.RetVal)
	// Output:
	// output: 10
	// return: 10
}

// ExampleParse shows the textual IR round trip.
func ExampleParse() {
	src := `
module demo
func @main() i64 {
entry:
  %0 = add i64 i64 40, i64 2
  call void @print_i64(%0)
  ret %0
}
`
	m, err := ir.Parse(src)
	if err != nil {
		panic(err)
	}
	res := interp.New(m).Run(sim.Fault{}, sim.Options{})
	fmt.Print(string(res.Output))
	// Output:
	// 42
}
