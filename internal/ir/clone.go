package ir

// CloneModule returns a deep copy of m. Protection passes mutate modules
// in place, so experiments clone the pristine module once per
// configuration (per protection level, with and without Flowery).
func CloneModule(m *Module) *Module {
	nm := &Module{
		Name:         m.Name,
		funcByName:   make(map[string]*Function, len(m.Funcs)),
		globalByName: make(map[string]*Global, len(m.Globals)),
		addrEnd:      m.addrEnd, // Addr fields are copied below, so the memo stays valid
	}
	for _, g := range m.Globals {
		init := make([]byte, len(g.Init))
		copy(init, g.Init)
		ng := &Global{Name: g.Name, Size: g.Size, Init: init, Addr: g.Addr}
		nm.Globals = append(nm.Globals, ng)
		nm.globalByName[g.Name] = ng
	}

	// Constants are interned by original pointer: the backend's register
	// cache keys values by identity, so a shared *Const must stay shared
	// in the clone or lowering would rematerialize it at every use and
	// produce different (though equivalent) code than the original.
	constMap := make(map[*Const]*Const)

	funcMap := make(map[*Function]*Function, len(m.Funcs))
	for _, f := range m.Funcs {
		nf := &Function{
			Name:     f.Name,
			RetType:  f.RetType,
			External: f.External,
			Module:   nm,
		}
		for _, p := range f.Params {
			nf.Params = append(nf.Params, &Param{Func: nf, Index: p.Index, Name: p.Name, Ty: p.Ty})
		}
		nm.Funcs = append(nm.Funcs, nf)
		nm.funcByName[nf.Name] = nf
		funcMap[f] = nf
	}

	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		cloneBody(f, funcMap[f], funcMap, constMap, nm)
	}
	return nm
}

func cloneBody(f, nf *Function, funcMap map[*Function]*Function, constMap map[*Const]*Const, nm *Module) {
	blockMap := make(map[*Block]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		nb := nf.NewBlock(b.Name)
		blockMap[b] = nb
	}
	instrMap := make(map[*Instr]*Instr)
	// First create all instruction shells so forward references (there
	// are none in well-formed IR, but protection metadata links can point
	// anywhere) resolve.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:   in.Op,
				Ty:   in.Ty,
				Pred: in.Pred,
				Aux:  in.Aux,
				ID:   -1,
			}
			instrMap[in] = ni
			blockMap[b].Append(ni)
		}
	}
	mapValue := func(v Value) Value {
		switch x := v.(type) {
		case *Instr:
			return instrMap[x]
		case *Param:
			return nf.Params[x.Index]
		case *Global:
			return nm.Global(x.Name)
		case *Const:
			nc := constMap[x]
			if nc == nil {
				nc = &Const{Ty: x.Ty, Bits: x.Bits}
				constMap[x] = nc
			}
			return nc
		default:
			return v
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			ni := instrMap[in]
			for _, a := range in.Args {
				ni.Args = append(ni.Args, mapValue(a))
			}
			for _, t := range in.Blocks {
				ni.Blocks = append(ni.Blocks, blockMap[t])
			}
			if in.Callee != nil {
				ni.Callee = funcMap[in.Callee]
			}
			ni.Prot = ProtMeta{
				IsDup:     in.Prot.IsDup,
				IsChecker: in.Prot.IsChecker,
				IsFlowery: in.Prot.IsFlowery,
			}
			if in.Prot.Orig != nil {
				ni.Prot.Orig = instrMap[in.Prot.Orig]
			}
			if in.Prot.Dup != nil {
				ni.Prot.Dup = instrMap[in.Prot.Dup]
			}
		}
	}
	nf.Renumber()
}
