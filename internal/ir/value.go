package ir

import (
	"fmt"
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// globals, function parameters, and the results of other instructions.
type Value interface {
	// Type returns the value's type.
	Type() Type
	// OperandString returns the form used when the value appears as an
	// operand in the textual IR (e.g. "%3", "@g", "i32 7").
	OperandString() string
}

// Const is a compile-time constant of integer, float, or pointer type.
// The payload is stored as raw bits: for F64 it is math.Float64bits of the
// value; for integer types it is the sign-extended 64-bit representation.
type Const struct {
	Ty   Type
	Bits uint64
}

// ConstInt returns an integer constant of the given type. The value is
// normalized (truncated and sign-extended) to the type's width.
func ConstInt(ty Type, v int64) *Const {
	return &Const{Ty: ty, Bits: NormalizeInt(ty, uint64(v))}
}

// ConstBool returns an i1 constant.
func ConstBool(b bool) *Const {
	if b {
		return &Const{Ty: I1, Bits: 1}
	}
	return &Const{Ty: I1, Bits: 0}
}

// ConstFloat returns an f64 constant.
func ConstFloat(v float64) *Const {
	return &Const{Ty: F64, Bits: math.Float64bits(v)}
}

// Type implements Value.
func (c *Const) Type() Type { return c.Ty }

// Int returns the constant as a signed integer.
func (c *Const) Int() int64 { return int64(c.Bits) }

// Float returns the constant as a float64.
func (c *Const) Float() float64 { return math.Float64frombits(c.Bits) }

// OperandString implements Value.
func (c *Const) OperandString() string {
	if c.Ty == F64 {
		return "f64 " + FormatFloat(c.Float())
	}
	return fmt.Sprintf("%s %d", c.Ty, int64(c.Bits))
}

// FormatFloat renders a float in a form the parser can read back exactly.
func FormatFloat(f float64) string {
	if math.IsInf(f, 1) {
		return "+Inf"
	}
	if math.IsInf(f, -1) {
		return "-Inf"
	}
	if math.IsNaN(f) {
		return "NaN"
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	// Guarantee a float-looking token so the parser can distinguish it
	// from an integer.
	hasDotOrExp := false
	for _, r := range s {
		if r == '.' || r == 'e' || r == 'E' {
			hasDotOrExp = true
			break
		}
	}
	if !hasDotOrExp {
		s += ".0"
	}
	return s
}

// NormalizeInt truncates bits to the width of ty and sign-extends the
// result back to 64 bits. All integer values in the interpreter and in
// constants are kept in this canonical form.
func NormalizeInt(ty Type, bits uint64) uint64 {
	switch ty {
	case I1:
		return bits & 1
	case I8:
		return uint64(int64(int8(bits)))
	case I32:
		return uint64(int64(int32(bits)))
	default:
		return bits
	}
}

// Global is a named module-level memory region with an optional
// initializer. Its address is assigned by Module.AssignAddresses and is
// identical in the IR interpreter and the assembly simulator, so pointer
// values can be compared across layers.
type Global struct {
	Name string
	// Size is the region size in bytes.
	Size int64
	// Init holds the initial bytes; if shorter than Size the remainder
	// is zero-filled.
	Init []byte
	// Addr is the assigned virtual address (see Module.AssignAddresses).
	Addr int64
}

// Type implements Value: a global used as an operand is its address.
func (g *Global) Type() Type { return Ptr }

// OperandString implements Value.
func (g *Global) OperandString() string { return "@" + g.Name }

// Param is a formal parameter of a function.
type Param struct {
	Func  *Function
	Index int
	Name  string
	Ty    Type
}

// Type implements Value.
func (p *Param) Type() Type { return p.Ty }

// OperandString implements Value.
func (p *Param) OperandString() string { return "%" + p.Name }
