package ir

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module from the textual format produced by Module.String.
//
// Grammar (one construct per line; ';' starts a comment):
//
//	module <name>
//	global @<name> <size> [= <hexbytes>]
//	func @<name>(<type> %<param>, ...) <type> {
//	<label>:
//	  [%<n> =] <op> ...
//	}
//
// Operands are %<n> (instruction results), %<name> (parameters),
// @<name> (globals), or <type> <literal> (constants).
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.parseModule()
	if err != nil {
		return nil, fmt.Errorf("line %d: %w", p.pos+1, err)
	}
	return m, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Module {
	m, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if i := strings.IndexByte(ln, ';'); i >= 0 {
			ln = ln[:i]
		}
		ln = strings.TrimSpace(ln)
		if ln == "" {
			p.pos++
			continue
		}
		return ln, true
	}
	return "", false
}

func (p *parser) advance() { p.pos++ }

func (p *parser) parseModule() (*Module, error) {
	ln, ok := p.next()
	if !ok || !strings.HasPrefix(ln, "module ") {
		return nil, fmt.Errorf("expected 'module <name>'")
	}
	m := NewModule(strings.TrimSpace(strings.TrimPrefix(ln, "module ")))
	p.advance()

	// First pass over the source to pre-declare functions, so calls can
	// reference functions defined later.
	if err := p.predeclare(m); err != nil {
		return nil, err
	}

	for {
		ln, ok := p.next()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(ln, "global "):
			if err := parseGlobal(m, ln); err != nil {
				return nil, err
			}
			p.advance()
		case strings.HasPrefix(ln, "func "):
			if err := p.parseFunc(m, ln); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("unexpected line %q", ln)
		}
	}
	return m, nil
}

// predeclare scans ahead for func headers and registers empty functions.
func (p *parser) predeclare(m *Module) error {
	for _, raw := range p.lines[p.pos:] {
		ln := strings.TrimSpace(raw)
		if !strings.HasPrefix(ln, "func ") {
			continue
		}
		name, params, ret, err := parseFuncHeader(ln)
		if err != nil {
			return err
		}
		if m.Func(name) != nil {
			return fmt.Errorf("duplicate function @%s", name)
		}
		f := &Function{Name: name, RetType: ret}
		for i, pr := range params {
			f.Params = append(f.Params, &Param{Func: f, Index: i, Name: pr.name, Ty: pr.ty})
		}
		m.AddFunction(f)
	}
	return nil
}

func parseGlobal(m *Module, ln string) error {
	// global @name size [= hexbytes]
	rest := strings.TrimPrefix(ln, "global ")
	fields := strings.Fields(rest)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "@") {
		return fmt.Errorf("malformed global %q", ln)
	}
	name := fields[0][1:]
	size, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return fmt.Errorf("global @%s: bad size: %w", name, err)
	}
	var init []byte
	if len(fields) >= 4 && fields[2] == "=" {
		init, err = hex.DecodeString(fields[3])
		if err != nil {
			return fmt.Errorf("global @%s: bad initializer: %w", name, err)
		}
	}
	if m.Global(name) != nil {
		return fmt.Errorf("duplicate global @%s", name)
	}
	g := m.addGlobal(&Global{Name: name, Size: size, Init: init})
	_ = g
	return nil
}

type paramDecl struct {
	name string
	ty   Type
}

func parseFuncHeader(ln string) (name string, params []paramDecl, ret Type, err error) {
	// func @name(ty %p, ...) ret {
	rest := strings.TrimPrefix(ln, "func ")
	open := strings.IndexByte(rest, '(')
	closeP := strings.LastIndexByte(rest, ')')
	if open < 0 || closeP < open || !strings.HasPrefix(rest, "@") {
		return "", nil, Void, fmt.Errorf("malformed func header %q", ln)
	}
	name = rest[1:open]
	paramsStr := rest[open+1 : closeP]
	tail := strings.TrimSpace(rest[closeP+1:])
	tail = strings.TrimSuffix(tail, "{")
	retStr := strings.TrimSpace(tail)
	ret, ok := TypeFromString(retStr)
	if !ok {
		return "", nil, Void, fmt.Errorf("bad return type %q", retStr)
	}
	if strings.TrimSpace(paramsStr) != "" {
		for _, ps := range strings.Split(paramsStr, ",") {
			fields := strings.Fields(strings.TrimSpace(ps))
			if len(fields) != 2 || !strings.HasPrefix(fields[1], "%") {
				return "", nil, Void, fmt.Errorf("bad parameter %q", ps)
			}
			pt, ok := TypeFromString(fields[0])
			if !ok {
				return "", nil, Void, fmt.Errorf("bad parameter type %q", fields[0])
			}
			params = append(params, paramDecl{name: fields[1][1:], ty: pt})
		}
	}
	return name, params, ret, nil
}

// pendingRef records an operand slot that needs an instruction result
// resolved after the whole body has been read.
type pendingRef struct {
	in  *Instr
	arg int
	id  int
}

func (p *parser) parseFunc(m *Module, header string) error {
	name, _, _, err := parseFuncHeader(header)
	if err != nil {
		return err
	}
	f := m.Func(name)
	p.advance()

	blocks := make(map[string]*Block)
	getBlock := func(n string) *Block {
		if b, ok := blocks[n]; ok {
			return b
		}
		b := f.NewBlock(n)
		blocks[n] = b
		return b
	}
	params := make(map[string]*Param)
	for _, pr := range f.Params {
		params[pr.Name] = pr
	}

	byID := make(map[int]*Instr)
	var pending []pendingRef
	var cur *Block

	for {
		ln, ok := p.next()
		if !ok {
			return fmt.Errorf("unterminated function @%s", name)
		}
		if ln == "}" {
			p.advance()
			break
		}
		if strings.HasSuffix(ln, ":") && !strings.ContainsAny(ln, " \t=") {
			cur = getBlock(strings.TrimSuffix(ln, ":"))
			p.advance()
			continue
		}
		if cur == nil {
			return fmt.Errorf("instruction before first label in @%s", name)
		}
		in, id, refs, err := parseInstr(m, f, params, getBlock, ln)
		if err != nil {
			return fmt.Errorf("in @%s: %w", name, err)
		}
		cur.Append(in)
		if id >= 0 {
			byID[id] = in
		}
		for _, r := range refs {
			r.in = in
			pending = append(pending, r)
		}
		p.advance()
	}

	for _, r := range pending {
		def, ok := byID[r.id]
		if !ok {
			return fmt.Errorf("@%s: reference to undefined %%%d", name, r.id)
		}
		r.in.Args[r.arg] = def
	}
	f.Renumber()
	return nil
}

// parseInstr parses one instruction line. Operand slots referencing %N
// instruction results are returned as pendingRefs with in==nil (filled by
// the caller) and a placeholder operand.
func parseInstr(m *Module, f *Function, params map[string]*Param, getBlock func(string) *Block, ln string) (*Instr, int, []pendingRef, error) {
	id := -1
	if strings.HasPrefix(ln, "%") {
		eq := strings.Index(ln, " = ")
		if eq < 0 {
			return nil, 0, nil, fmt.Errorf("malformed instruction %q", ln)
		}
		n, err := strconv.Atoi(ln[1:eq])
		if err != nil {
			return nil, 0, nil, fmt.Errorf("bad result id in %q", ln)
		}
		id = n
		ln = ln[eq+3:]
	}
	fields := tokenize(ln)
	if len(fields) == 0 {
		return nil, 0, nil, fmt.Errorf("empty instruction")
	}
	opName := fields[0]
	rest := fields[1:]

	var refs []pendingRef
	// operand parses one operand from tokens, consuming 1 or 2 tokens.
	operand := func(toks []string, argIdx int) (Value, int, error) {
		if len(toks) == 0 {
			return nil, 0, fmt.Errorf("missing operand")
		}
		t := toks[0]
		switch {
		case strings.HasPrefix(t, "%"):
			nm := t[1:]
			if n, err := strconv.Atoi(nm); err == nil {
				refs = append(refs, pendingRef{arg: argIdx, id: n})
				// Placeholder; replaced in resolution pass.
				return ConstInt(I64, 0), 1, nil
			}
			if pr, ok := params[nm]; ok {
				return pr, 1, nil
			}
			return nil, 0, fmt.Errorf("unknown value %%%s", nm)
		case strings.HasPrefix(t, "@"):
			g := m.Global(t[1:])
			if g == nil {
				return nil, 0, fmt.Errorf("unknown global %s", t)
			}
			return g, 1, nil
		default:
			ty, ok := TypeFromString(t)
			if !ok {
				return nil, 0, fmt.Errorf("bad operand %q", t)
			}
			if len(toks) < 2 {
				return nil, 0, fmt.Errorf("constant %s missing literal", t)
			}
			lit := toks[1]
			if ty == F64 {
				fv, err := strconv.ParseFloat(lit, 64)
				if err != nil {
					return nil, 0, fmt.Errorf("bad float literal %q", lit)
				}
				return ConstFloat(fv), 2, nil
			}
			iv, err := strconv.ParseInt(lit, 10, 64)
			if err != nil {
				return nil, 0, fmt.Errorf("bad int literal %q", lit)
			}
			return ConstInt(ty, iv), 2, nil
		}
	}

	in := &Instr{ID: -1}
	switch opName {
	case "alloca":
		sz, err := strconv.ParseInt(rest[0], 10, 64)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("bad alloca size")
		}
		in.Op, in.Ty, in.Aux = OpAlloca, Ptr, sz
	case "load":
		ty, ok := TypeFromString(rest[0])
		if !ok {
			return nil, 0, nil, fmt.Errorf("bad load type %q", rest[0])
		}
		v, _, err := operand(rest[1:], 0)
		if err != nil {
			return nil, 0, nil, err
		}
		in.Op, in.Ty, in.Args = OpLoad, ty, []Value{v}
	case "store":
		v0, nTok, err := operand(rest, 0)
		if err != nil {
			return nil, 0, nil, err
		}
		v1, _, err := operand(rest[nTok:], 1)
		if err != nil {
			return nil, 0, nil, err
		}
		in.Op, in.Ty, in.Args = OpStore, Void, []Value{v0, v1}
	case "icmp", "fcmp":
		pred, ok := PredFromString(rest[0])
		if !ok {
			return nil, 0, nil, fmt.Errorf("bad predicate %q", rest[0])
		}
		v0, nTok, err := operand(rest[1:], 0)
		if err != nil {
			return nil, 0, nil, err
		}
		v1, _, err := operand(rest[1+nTok:], 1)
		if err != nil {
			return nil, 0, nil, err
		}
		op := OpICmp
		if opName == "fcmp" {
			op = OpFCmp
		}
		in.Op, in.Ty, in.Pred, in.Args = op, I1, pred, []Value{v0, v1}
	case "gep":
		v0, nTok, err := operand(rest, 0)
		if err != nil {
			return nil, 0, nil, err
		}
		v1, nTok2, err := operand(rest[nTok:], 1)
		if err != nil {
			return nil, 0, nil, err
		}
		sz, err := strconv.ParseInt(rest[nTok+nTok2], 10, 64)
		if err != nil {
			return nil, 0, nil, fmt.Errorf("bad gep element size")
		}
		in.Op, in.Ty, in.Aux, in.Args = OpGEP, Ptr, sz, []Value{v0, v1}
	case "trunc", "zext", "sext", "sitofp", "fptosi":
		op, _ := OpFromString(opName)
		v, nTok, err := operand(rest, 0)
		if err != nil {
			return nil, 0, nil, err
		}
		if len(rest) < nTok+2 || rest[nTok] != "to" {
			return nil, 0, nil, fmt.Errorf("%s missing 'to <type>'", opName)
		}
		ty, ok := TypeFromString(rest[nTok+1])
		if !ok {
			return nil, 0, nil, fmt.Errorf("bad cast target %q", rest[nTok+1])
		}
		in.Op, in.Ty, in.Args = op, ty, []Value{v}
	case "call":
		ty, ok := TypeFromString(rest[0])
		if !ok {
			return nil, 0, nil, fmt.Errorf("bad call type %q", rest[0])
		}
		if !strings.HasPrefix(rest[1], "@") {
			return nil, 0, nil, fmt.Errorf("bad callee %q", rest[1])
		}
		callee := m.Func(rest[1][1:])
		if callee == nil {
			return nil, 0, nil, fmt.Errorf("unknown function %s", rest[1])
		}
		var args []Value
		toks := rest[2:]
		for len(toks) > 0 {
			v, nTok, err := operand(toks, len(args))
			if err != nil {
				return nil, 0, nil, err
			}
			args = append(args, v)
			toks = toks[nTok:]
		}
		in.Op, in.Ty, in.Callee, in.Args = OpCall, ty, callee, args
	case "br":
		if len(rest) != 2 || rest[0] != "label" {
			return nil, 0, nil, fmt.Errorf("malformed br")
		}
		in.Op, in.Ty, in.Blocks = OpBr, Void, []*Block{getBlock(strings.TrimPrefix(rest[1], "%"))}
	case "condbr":
		v, nTok, err := operand(rest, 0)
		if err != nil {
			return nil, 0, nil, err
		}
		toks := rest[nTok:]
		if len(toks) != 4 || toks[0] != "label" || toks[2] != "label" {
			return nil, 0, nil, fmt.Errorf("malformed condbr")
		}
		in.Op, in.Ty = OpCondBr, Void
		in.Args = []Value{v}
		in.Blocks = []*Block{
			getBlock(strings.TrimPrefix(toks[1], "%")),
			getBlock(strings.TrimPrefix(toks[3], "%")),
		}
	case "ret":
		in.Op, in.Ty = OpRet, Void
		if len(rest) > 0 {
			v, _, err := operand(rest, 0)
			if err != nil {
				return nil, 0, nil, err
			}
			in.Args = []Value{v}
		}
	default:
		op, ok := OpFromString(opName)
		if !ok || !op.IsBinOp() {
			return nil, 0, nil, fmt.Errorf("unknown opcode %q", opName)
		}
		ty, ok := TypeFromString(rest[0])
		if !ok {
			return nil, 0, nil, fmt.Errorf("bad %s type %q", opName, rest[0])
		}
		v0, nTok, err := operand(rest[1:], 0)
		if err != nil {
			return nil, 0, nil, err
		}
		v1, _, err := operand(rest[1+nTok:], 1)
		if err != nil {
			return nil, 0, nil, err
		}
		in.Op, in.Ty, in.Args = op, ty, []Value{v0, v1}
	}
	if id >= 0 && in.Ty == Void {
		return nil, 0, nil, fmt.Errorf("void instruction %q cannot have a result id", opName)
	}
	return in, id, refs, nil
}

// tokenize splits an instruction line into tokens, treating commas and
// parentheses as separators.
func tokenize(s string) []string {
	s = strings.NewReplacer(",", " ", "(", " ", ")", " ").Replace(s)
	return strings.Fields(s)
}
