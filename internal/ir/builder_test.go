package ir

import (
	"testing"
)

func TestBuilderAllocaHoistsToEntry(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("main", I64)
	b := NewBuilder(f)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	// Alloca requested while building a non-entry block must land in the
	// entry block (static frames).
	slot := b.Alloca(8)
	b.Store(ConstInt(I64, 1), slot)
	b.Ret(ConstInt(I64, 0))

	if slot.Parent != f.Entry() {
		t.Fatalf("alloca placed in %s, want entry", slot.Parent.Name)
	}
	if f.Entry().Instrs[0] != slot {
		t.Fatal("alloca not at the head of entry")
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderAllocaOrderPreserved(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("main", I64)
	b := NewBuilder(f)
	a1 := b.Alloca(8)
	a2 := b.Alloca(16)
	a3 := b.Alloca(8)
	e := f.Entry()
	if e.Instrs[0] != a1 || e.Instrs[1] != a2 || e.Instrs[2] != a3 {
		t.Fatal("allocas reordered")
	}
	b.Ret(ConstInt(I64, 0))
}

func TestBuilderPanicsOnTypeErrors(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("main", I64)
	b := NewBuilder(f)

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("mixed-type add", func() { b.Add(ConstInt(I64, 1), ConstInt(I32, 1)) })
	mustPanic("float icmp pred", func() { b.ICmp(PredOEQ, ConstInt(I64, 1), ConstInt(I64, 1)) })
	mustPanic("int fcmp pred", func() { b.FCmp(PredEQ, ConstFloat(1), ConstFloat(1)) })
	mustPanic("store to non-pointer", func() { b.Store(ConstInt(I64, 1), ConstInt(I64, 2)) })
	mustPanic("condbr non-bool", func() {
		t1 := b.NewBlock("a")
		t2 := b.NewBlock("b")
		b.CondBr(ConstInt(I64, 1), t1, t2)
	})
	mustPanic("call arity", func() { b.CallNamed("print_i64") })
	mustPanic("call arg type", func() { b.CallNamed("print_i64", ConstFloat(1)) })
	mustPanic("unknown callee", func() { b.CallNamed("nope") })
	mustPanic("emit after terminator", func() {
		b.Ret(ConstInt(I64, 0))
		b.Ret(ConstInt(I64, 0))
	})
}

func TestBuilderControlFlowHelpers(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("main", I64)
	b := NewBuilder(f)
	sum := b.AllocVar(I64)
	b.Store(ConstInt(I64, 0), sum)

	// Nested loops with an if inside.
	b.ForLoop("outer", ConstInt(I64, 0), ConstInt(I64, 3), ConstInt(I64, 1), func(i Value) {
		b.ForLoop("inner", ConstInt(I64, 0), ConstInt(I64, 4), ConstInt(I64, 1), func(j Value) {
			odd := b.ICmp(PredEQ, b.And(j, ConstInt(I64, 1)), ConstInt(I64, 1))
			b.If(odd, func() {
				cur := b.Load(I64, sum)
				b.Store(b.Add(cur, b.Mul(i, j)), sum)
			}, nil)
		})
	})
	v := b.Load(I64, sum)
	b.Ret(v)
	if err := m.Verify(); err != nil {
		t.Fatalf("nested helpers produced invalid IR: %v", err)
	}
	// sum of i*j for i in 0..2, j in {1,3} = (0+1+2)*(1+3) = 12
	// (executed via the interpreter in interp tests; here structural only)
	if f.NumInstrs() < 20 {
		t.Fatal("suspiciously little code emitted")
	}
}

func TestBuilderWhile(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("main", I64)
	b := NewBuilder(f)
	n := b.AllocVar(I64)
	b.Store(ConstInt(I64, 10), n)
	b.While("count", func() Value {
		return b.ICmp(PredSGT, b.Load(I64, n), ConstInt(I64, 0))
	}, func() {
		b.Store(b.Sub(b.Load(I64, n), ConstInt(I64, 1)), n)
	})
	b.Ret(b.Load(I64, n))
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestModuleGlobalConstructors(t *testing.T) {
	m := NewModule("g")
	gi := m.NewGlobalI64("i64s", []int64{1, -1})
	gf := m.NewGlobalF64("f64s", []float64{0.5})
	g32 := m.NewGlobalI32("i32s", []int32{-7, 9})
	gd := m.NewGlobalData("raw", []byte{1, 2, 3})
	gz := m.NewGlobal("zeros", 64)

	if gi.Size != 16 || gf.Size != 8 || g32.Size != 8 || gd.Size != 3 || gz.Size != 64 {
		t.Fatal("global sizes wrong")
	}
	// Little-endian encoding checks.
	if gi.Init[0] != 1 || gi.Init[8] != 0xff {
		t.Fatalf("i64 encoding wrong: % x", gi.Init)
	}
	if g32.Init[0] != 0xf9 || g32.Init[4] != 9 {
		t.Fatalf("i32 encoding wrong: % x", g32.Init)
	}

	end := m.AssignAddresses()
	if gi.Addr < GlobalBase || end <= gi.Addr {
		t.Fatal("addresses not assigned sensibly")
	}
	// 16-byte alignment.
	for _, g := range m.Globals {
		if g.Addr%16 != 0 {
			t.Errorf("global %s misaligned at %#x", g.Name, g.Addr)
		}
	}
	// Idempotent.
	a1 := gi.Addr
	m.AssignAddresses()
	if gi.Addr != a1 {
		t.Fatal("AssignAddresses not deterministic")
	}
}

func TestDuplicateNamesPanic(t *testing.T) {
	m := NewModule("d")
	m.NewGlobal("g", 8)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate global accepted")
			}
		}()
		m.NewGlobal("g", 8)
	}()
	m.NewFunction("f", Void)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate function accepted")
			}
		}()
		m.NewFunction("f", Void)
	}()
}

func TestCloneModuleIndependence(t *testing.T) {
	m := wellFormed()
	m.NewGlobalI64("data", []int64{5})
	clone := CloneModule(m)
	if err := clone.Verify(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
	if clone.String() != m.String() {
		t.Fatalf("clone prints differently:\n%s\nvs\n%s", clone.String(), m.String())
	}
	// Mutating the clone must not affect the original.
	cf := clone.Func("main")
	cf.Entry().InsertAt(0, &Instr{Op: OpAlloca, Ty: Ptr, Aux: 8})
	clone.Global("data").Init[0] = 99
	if m.Func("main").NumInstrs() == cf.NumInstrs() {
		t.Fatal("clone shares instruction storage")
	}
	if m.Global("data").Init[0] == 99 {
		t.Fatal("clone shares global initializer storage")
	}
}

func TestCloneModulePreservesProtMetadata(t *testing.T) {
	m := wellFormed()
	f := m.Func("main")
	var add *Instr
	for _, in := range f.Entry().Instrs {
		if in.Op == OpAdd {
			add = in
		}
	}
	dup := &Instr{Op: OpAdd, Ty: I64, Args: add.Args, Prot: ProtMeta{IsDup: true, Orig: add}}
	f.Entry().InsertAt(f.Entry().Index(add)+1, dup)
	add.Prot.Dup = dup

	clone := CloneModule(m)
	var cAdd, cDup *Instr
	for _, in := range clone.Func("main").Entry().Instrs {
		if in.Op == OpAdd {
			if in.Prot.IsDup {
				cDup = in
			} else {
				cAdd = in
			}
		}
	}
	if cAdd == nil || cDup == nil {
		t.Fatal("clone lost instructions")
	}
	if cAdd.Prot.Dup != cDup || cDup.Prot.Orig != cAdd {
		t.Fatal("clone did not remap protection links")
	}
	if cAdd.Prot.Dup == add.Prot.Dup {
		t.Fatal("clone shares protection links with the original")
	}
}

func TestEnumerateInstrsStableAcrossClone(t *testing.T) {
	m := wellFormed()
	c := CloneModule(m)
	a := m.EnumerateInstrs()
	b := c.EnumerateInstrs()
	if len(a) != len(b) {
		t.Fatalf("clone enumeration length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op {
			t.Fatalf("enumeration order diverges at %d: %v vs %v", i, a[i].Op, b[i].Op)
		}
	}
}

func TestBlockHelpers(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("main", I64)
	b := NewBuilder(f)
	x := b.Add(ConstInt(I64, 1), ConstInt(I64, 2))
	y := b.Add(x, ConstInt(I64, 3))
	b.Ret(y)
	e := f.Entry()

	if e.Index(x) != 0 || e.Index(y) != 1 {
		t.Fatal("Index wrong")
	}
	if e.Terminator() == nil || e.Terminator().Op != OpRet {
		t.Fatal("Terminator wrong")
	}
	ins := &Instr{Op: OpSub, Ty: I64, Args: []Value{x, x}}
	e.InsertAt(1, ins)
	if e.Index(ins) != 1 || e.Index(y) != 2 {
		t.Fatal("InsertAt shifted wrongly")
	}
	e.Remove(1)
	if e.Index(y) != 1 {
		t.Fatal("Remove shifted wrongly")
	}
}
