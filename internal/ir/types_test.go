package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeSizes(t *testing.T) {
	cases := []struct {
		ty   Type
		size int64
		bits int
	}{
		{Void, 0, 0},
		{I1, 1, 1},
		{I8, 1, 8},
		{I32, 4, 32},
		{I64, 8, 64},
		{F64, 8, 64},
		{Ptr, 8, 64},
	}
	for _, c := range cases {
		if c.ty.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.ty, c.ty.Size(), c.size)
		}
		if c.ty.Bits() != c.bits {
			t.Errorf("%v.Bits() = %d, want %d", c.ty, c.ty.Bits(), c.bits)
		}
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, ty := range []Type{Void, I1, I8, I32, I64, F64, Ptr} {
		got, ok := TypeFromString(ty.String())
		if !ok || got != ty {
			t.Errorf("TypeFromString(%q) = %v, %v", ty.String(), got, ok)
		}
	}
	if _, ok := TypeFromString("i128"); ok {
		t.Error("parsed a nonexistent type")
	}
}

func TestTypePredicates(t *testing.T) {
	for _, ty := range []Type{I1, I8, I32, I64} {
		if !ty.IsInt() || ty.IsFloat() {
			t.Errorf("%v misclassified", ty)
		}
	}
	if !F64.IsFloat() || F64.IsInt() {
		t.Error("F64 misclassified")
	}
	if Ptr.IsInt() || Ptr.IsFloat() {
		t.Error("Ptr misclassified")
	}
}

// NormalizeInt must be idempotent and width-faithful for every type.
func TestNormalizeIntProperties(t *testing.T) {
	f := func(bits uint64) bool {
		for _, ty := range []Type{I1, I8, I32, I64} {
			n := NormalizeInt(ty, bits)
			if NormalizeInt(ty, n) != n {
				return false // not idempotent
			}
			// Value must fit the signed range of the type.
			v := int64(n)
			switch ty {
			case I1:
				if v != 0 && v != 1 {
					return false
				}
			case I8:
				if v < math.MinInt8 || v > math.MaxInt8 {
					return false
				}
			case I32:
				if v < math.MinInt32 || v > math.MaxInt32 {
					return false
				}
			}
			// Low bits preserved.
			w := uint(ty.Bits())
			if w < 64 && (n^bits)&((1<<w)-1) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConstConstructors(t *testing.T) {
	if c := ConstInt(I8, 200); c.Int() != -56 {
		t.Errorf("ConstInt(I8, 200).Int() = %d, want -56 (sign-extended)", c.Int())
	}
	if c := ConstInt(I32, -1); c.Bits != ^uint64(0) {
		t.Errorf("ConstInt(I32, -1) not canonically sign-extended: %#x", c.Bits)
	}
	if c := ConstBool(true); c.Bits != 1 || c.Ty != I1 {
		t.Errorf("ConstBool(true) = %+v", c)
	}
	if c := ConstFloat(1.5); c.Float() != 1.5 || c.Ty != F64 {
		t.Errorf("ConstFloat(1.5) = %+v", c)
	}
}

func TestFormatFloatAlwaysFloatLooking(t *testing.T) {
	for _, v := range []float64{0, 1, -3, 0.5, 1e300, -1e-300, math.Pi} {
		s := FormatFloat(v)
		hasMark := false
		for _, r := range s {
			if r == '.' || r == 'e' || r == 'E' {
				hasMark = true
			}
		}
		if !hasMark {
			t.Errorf("FormatFloat(%g) = %q lacks a float marker", v, s)
		}
	}
	if FormatFloat(math.Inf(1)) != "+Inf" || FormatFloat(math.Inf(-1)) != "-Inf" || FormatFloat(math.NaN()) != "NaN" {
		t.Error("special values misformatted")
	}
}

func TestOpClassification(t *testing.T) {
	if !OpBr.IsTerminator() || !OpCondBr.IsTerminator() || !OpRet.IsTerminator() {
		t.Error("terminators misclassified")
	}
	if OpAdd.IsTerminator() || OpStore.IsTerminator() {
		t.Error("non-terminators classified as terminators")
	}
	for _, op := range []Op{OpAdd, OpSub, OpMul, OpSDiv, OpSRem, OpAnd, OpOr, OpXor, OpShl, OpAShr, OpLShr, OpFAdd, OpFSub, OpFMul, OpFDiv} {
		if !op.IsBinOp() {
			t.Errorf("%v should be a binop", op)
		}
	}
	if OpLoad.IsBinOp() || OpICmp.IsBinOp() {
		t.Error("non-binops classified as binops")
	}
	for _, op := range []Op{OpTrunc, OpZExt, OpSExt, OpSIToFP, OpFPToSI} {
		if !op.IsCast() {
			t.Errorf("%v should be a cast", op)
		}
	}
	if OpLoad.IsPure() || OpStore.IsPure() || OpCall.IsPure() {
		t.Error("impure ops classified pure")
	}
	if !OpAdd.IsPure() || !OpICmp.IsPure() || !OpGEP.IsPure() {
		t.Error("pure ops misclassified")
	}
}

func TestOpAndPredStringRoundTrip(t *testing.T) {
	for op := OpAlloca; op <= OpRet; op++ {
		got, ok := OpFromString(op.String())
		if !ok || got != op {
			t.Errorf("OpFromString(%q) = %v, %v", op.String(), got, ok)
		}
	}
	for p := PredEQ; p <= PredOGE; p++ {
		got, ok := PredFromString(p.String())
		if !ok || got != p {
			t.Errorf("PredFromString(%q) = %v, %v", p.String(), got, ok)
		}
	}
}

func TestPredIsFloat(t *testing.T) {
	for p := PredEQ; p <= PredUGE; p++ {
		if p.IsFloatPred() {
			t.Errorf("%v wrongly float", p)
		}
	}
	for p := PredOEQ; p <= PredOGE; p++ {
		if !p.IsFloatPred() {
			t.Errorf("%v wrongly integer", p)
		}
	}
}
