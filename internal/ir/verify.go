package ir

import (
	"errors"
	"fmt"
)

// Verify checks module well-formedness. It returns a joined error listing
// every problem found. Passing verification is a precondition of the
// interpreter, the optimizer, and the backend; all transformation passes
// are tested to preserve it.
func (m *Module) Verify() error {
	var errs []error
	if m.Func("main") == nil {
		errs = append(errs, errors.New("module has no @main function"))
	}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		if err := verifyFunc(f); err != nil {
			errs = append(errs, fmt.Errorf("func @%s: %w", f.Name, err))
		}
	}
	return errors.Join(errs...)
}

func verifyFunc(f *Function) error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return errors.New("no blocks")
	}
	f.Renumber()

	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		if blockSet[b] {
			bad("block %s appears twice", b.Name)
		}
		blockSet[b] = true
	}

	// Def set: every instruction defined in the function.
	defs := make(map[*Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			defs[in] = true
		}
	}

	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			bad("block %s is empty", b.Name)
			continue
		}
		for i, in := range b.Instrs {
			// Allocas must live in the entry block so frames have a
			// static size (clang -O0 discipline; the backend and both
			// execution engines precompute frame layouts from it).
			if in.Op == OpAlloca && bi != 0 {
				bad("block %s: alloca outside entry block", b.Name)
			}
			// No block may branch back to entry: entry executes exactly
			// once per invocation (also required for static frames).
			for _, t := range in.Blocks {
				if t == f.Blocks[0] {
					bad("block %s: branch to entry block", b.Name)
				}
			}
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					bad("block %s does not end in a terminator", b.Name)
				} else {
					bad("block %s: terminator %s in the middle", b.Name, in.Op)
				}
			}
			if in.Parent != b {
				bad("block %s: instruction %s has wrong parent", b.Name, in)
			}
			for _, t := range in.Blocks {
				if !blockSet[t] {
					bad("block %s: branch to foreign block %s", b.Name, t.Name)
				}
			}
			for ai, a := range in.Args {
				switch v := a.(type) {
				case *Instr:
					if !defs[v] {
						bad("block %s: %s uses operand %d defined outside the function", b.Name, in.Op, ai)
					}
					if !v.HasResult() {
						bad("block %s: %s uses void instruction as operand", b.Name, in.Op)
					}
				case *Param:
					if v.Func != f {
						bad("block %s: %s uses parameter of another function", b.Name, in.Op)
					}
				case *Const, *Global:
					// always fine
				case nil:
					bad("block %s: %s has nil operand %d", b.Name, in.Op, ai)
				default:
					bad("block %s: %s has operand of unknown kind %T", b.Name, in.Op, a)
				}
			}
			if err := verifyInstrTypes(f, in); err != nil {
				bad("block %s: %v", b.Name, err)
			}
		}
	}

	// Dominance: every use must be reachable only after its definition.
	// With no phi nodes a simple forward-flow check suffices: compute,
	// per block, the set of instruction definitions guaranteed available
	// on entry (intersection over predecessors), then scan uses.
	errs = append(errs, verifyDominance(f)...)

	return errors.Join(errs...)
}

func verifyInstrTypes(f *Function, in *Instr) error {
	argTy := func(i int) Type { return in.Args[i].Type() }
	switch in.Op {
	case OpAlloca:
		if in.Aux <= 0 {
			return fmt.Errorf("alloca with non-positive size %d", in.Aux)
		}
		if in.Ty != Ptr {
			return errors.New("alloca must produce ptr")
		}
	case OpLoad:
		if len(in.Args) != 1 || argTy(0) != Ptr {
			return errors.New("load needs one ptr operand")
		}
		if in.Ty == Void || in.Ty == Ptr && false {
			return errors.New("load of void")
		}
	case OpStore:
		if len(in.Args) != 2 || argTy(1) != Ptr {
			return errors.New("store needs value and ptr")
		}
		if argTy(0) == Void {
			return errors.New("store of void value")
		}
	case OpICmp:
		if len(in.Args) != 2 || argTy(0) != argTy(1) {
			return errors.New("icmp needs two operands of one type")
		}
		if !(argTy(0).IsInt() || argTy(0) == Ptr) {
			return fmt.Errorf("icmp on %s", argTy(0))
		}
		if in.Pred == PredNone || in.Pred.IsFloatPred() {
			return fmt.Errorf("icmp with predicate %s", in.Pred)
		}
		if in.Ty != I1 {
			return errors.New("icmp must produce i1")
		}
	case OpFCmp:
		if len(in.Args) != 2 || argTy(0) != F64 || argTy(1) != F64 {
			return errors.New("fcmp needs two f64 operands")
		}
		if !in.Pred.IsFloatPred() {
			return fmt.Errorf("fcmp with predicate %s", in.Pred)
		}
		if in.Ty != I1 {
			return errors.New("fcmp must produce i1")
		}
	case OpGEP:
		if len(in.Args) != 2 || argTy(0) != Ptr || argTy(1) != I64 {
			return errors.New("gep needs (ptr, i64)")
		}
		if in.Aux <= 0 {
			return fmt.Errorf("gep with non-positive element size %d", in.Aux)
		}
		if in.Ty != Ptr {
			return errors.New("gep must produce ptr")
		}
	case OpTrunc:
		if len(in.Args) != 1 || !argTy(0).IsInt() || !in.Ty.IsInt() || in.Ty.Size() > argTy(0).Size() {
			return errors.New("trunc must narrow an integer")
		}
	case OpZExt, OpSExt:
		if len(in.Args) != 1 || !argTy(0).IsInt() || !in.Ty.IsInt() || in.Ty.Size() < argTy(0).Size() {
			return fmt.Errorf("%s must widen an integer", in.Op)
		}
	case OpSIToFP:
		if len(in.Args) != 1 || !argTy(0).IsInt() || in.Ty != F64 {
			return errors.New("sitofp needs integer operand and f64 result")
		}
	case OpFPToSI:
		if len(in.Args) != 1 || argTy(0) != F64 || !in.Ty.IsInt() {
			return errors.New("fptosi needs f64 operand and integer result")
		}
	case OpCall:
		if in.Callee == nil {
			return errors.New("call with nil callee")
		}
		if f.Module != nil && f.Module.Func(in.Callee.Name) != in.Callee {
			return fmt.Errorf("call to function @%s not in module", in.Callee.Name)
		}
		if len(in.Args) != len(in.Callee.Params) {
			return fmt.Errorf("call @%s: %d args, want %d", in.Callee.Name, len(in.Args), len(in.Callee.Params))
		}
		for i, a := range in.Args {
			if a.Type() != in.Callee.Params[i].Ty {
				return fmt.Errorf("call @%s arg %d: %s, want %s", in.Callee.Name, i, a.Type(), in.Callee.Params[i].Ty)
			}
		}
		if in.Ty != in.Callee.RetType {
			return fmt.Errorf("call @%s result type %s, want %s", in.Callee.Name, in.Ty, in.Callee.RetType)
		}
	case OpBr:
		if len(in.Blocks) != 1 {
			return errors.New("br needs one target")
		}
	case OpCondBr:
		if len(in.Blocks) != 2 || len(in.Args) != 1 || argTy(0) != I1 {
			return errors.New("condbr needs i1 condition and two targets")
		}
	case OpRet:
		switch {
		case f.RetType == Void && len(in.Args) != 0:
			return errors.New("ret with value in void function")
		case f.RetType != Void && (len(in.Args) != 1 || argTy(0) != f.RetType):
			return fmt.Errorf("ret must return %s", f.RetType)
		}
	default:
		if in.Op.IsBinOp() {
			if len(in.Args) != 2 || argTy(0) != argTy(1) || in.Ty != argTy(0) {
				return fmt.Errorf("%s needs two operands of the result type", in.Op)
			}
			isF := in.Op >= OpFAdd && in.Op <= OpFDiv
			if isF && in.Ty != F64 {
				return fmt.Errorf("%s needs f64", in.Op)
			}
			if !isF && !in.Ty.IsInt() {
				return fmt.Errorf("%s needs integer type, got %s", in.Op, in.Ty)
			}
		} else {
			return fmt.Errorf("unknown opcode %s", in.Op)
		}
	}
	return nil
}

// verifyDominance checks that every use of an instruction result is
// dominated by its definition, via a forward dataflow fixpoint over the
// "definitely defined on entry" sets.
func verifyDominance(f *Function) []error {
	var errs []error
	n := len(f.Blocks)
	idx := make(map[*Block]int, n)
	for i, b := range f.Blocks {
		idx[b] = i
	}
	preds := make([][]int, n)
	for i, b := range f.Blocks {
		for _, s := range b.Succs() {
			j, ok := idx[s]
			if !ok {
				continue
			}
			preds[j] = append(preds[j], i)
		}
	}

	// in[b] = set of instrs defined on every path reaching b's entry.
	// Initialize to "everything" (represented by nil + full flag) except
	// the entry block, then iterate to fixpoint.
	all := make(map[*Instr]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.HasResult() {
				all[in] = true
			}
		}
	}
	inSets := make([]map[*Instr]bool, n)
	full := make([]bool, n)
	for i := range full {
		full[i] = i != 0
	}
	inSets[0] = map[*Instr]bool{}

	outOf := func(i int) (map[*Instr]bool, bool) {
		if full[i] {
			return nil, true
		}
		out := make(map[*Instr]bool, len(inSets[i])+len(f.Blocks[i].Instrs))
		for k := range inSets[i] {
			out[k] = true
		}
		for _, in := range f.Blocks[i].Instrs {
			if in.HasResult() {
				out[in] = true
			}
		}
		return out, false
	}

	for changed := true; changed; {
		changed = false
		for i := 1; i < n; i++ {
			var meet map[*Instr]bool
			isFull := true
			for _, p := range preds[i] {
				po, pFull := outOf(p)
				if pFull {
					continue
				}
				if isFull {
					isFull = false
					meet = make(map[*Instr]bool, len(po))
					for k := range po {
						meet[k] = true
					}
				} else {
					for k := range meet {
						if !po[k] {
							delete(meet, k)
						}
					}
				}
			}
			if len(preds[i]) == 0 {
				// Unreachable block: treat as full (no uses will be
				// executed), keep as-is.
				continue
			}
			if isFull {
				continue
			}
			if full[i] || !sameSet(inSets[i], meet) {
				full[i] = false
				inSets[i] = meet
				changed = true
			}
		}
	}

	for i, b := range f.Blocks {
		if full[i] && i != 0 {
			continue // unreachable
		}
		avail := make(map[*Instr]bool, len(inSets[i]))
		for k := range inSets[i] {
			avail[k] = true
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if d, ok := a.(*Instr); ok && !avail[d] {
					errs = append(errs, fmt.Errorf("block %s: use of %s not dominated by its definition", b.Name, d.OperandString()))
				}
			}
			if in.HasResult() {
				avail[in] = true
			}
		}
	}
	return errs
}

func sameSet(a, b map[*Instr]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
