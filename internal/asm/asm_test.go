package asm

import (
	"strings"
	"testing"
)

func TestCondEval(t *testing.T) {
	cases := []struct {
		cond  Cond
		flags uint64
		want  bool
	}{
		{CondE, FlagZF, true},
		{CondE, 0, false},
		{CondNE, 0, true},
		{CondL, FlagSF, true},           // SF != OF
		{CondL, FlagSF | FlagOF, false}, // SF == OF
		{CondLE, FlagZF, true},
		{CondG, 0, true},
		{CondG, FlagZF, false},
		{CondGE, FlagSF | FlagOF, true},
		{CondB, FlagCF, true},
		{CondBE, FlagZF, true},
		{CondA, 0, true},
		{CondA, FlagCF, false},
		{CondA, FlagZF, false},
		{CondAE, FlagCF, false},
		{CondP, FlagPF, true},
		{CondNP, FlagPF, false},
	}
	for _, c := range cases {
		if got := c.cond.Eval(c.flags); got != c.want {
			t.Errorf("%v.Eval(%#x) = %v, want %v", c.cond, c.flags, got, c.want)
		}
	}
}

func TestHasDestAndWidths(t *testing.T) {
	cases := []struct {
		in   Instr
		reg  Reg
		has  bool
		bits int
	}{
		{Instr{Op: OpMov, Size: 8, Dst: RegOp(RAX), Src: ImmOp(1)}, RAX, true, 64},
		{Instr{Op: OpMov, Size: 4, Dst: RegOp(RCX), Src: ImmOp(1)}, RCX, true, 32},
		{Instr{Op: OpMov, Size: 1, Dst: RegOp(RDX), Src: ImmOp(1)}, RDX, true, 8},
		{Instr{Op: OpMov, Size: 8, Dst: MemOp(RBP, -8), Src: RegOp(RAX)}, RegNone, false, 0},
		{Instr{Op: OpCmp, Size: 8, Dst: RegOp(RAX), Src: ImmOp(0)}, RFLAGS, true, len(DefinedFlags)},
		{Instr{Op: OpTest, Size: 1, Dst: RegOp(RAX), Src: ImmOp(1)}, RFLAGS, true, len(DefinedFlags)},
		{Instr{Op: OpUComiSD, Size: 8, Dst: RegOp(XMM0), Src: RegOp(XMM1)}, RFLAGS, true, len(DefinedFlags)},
		{Instr{Op: OpSet, Cond: CondE, Dst: RegOp(RAX)}, RAX, true, 8},
		{Instr{Op: OpIDiv, Size: 8, Src: RegOp(RCX)}, RAX, true, 64},
		{Instr{Op: OpCqo, Size: 8}, RDX, true, 64},
		{Instr{Op: OpPush, Src: RegOp(RBP)}, RSP, true, 64},
		{Instr{Op: OpPop, Dst: RegOp(RBP)}, RBP, true, 64},
		{Instr{Op: OpRet}, RIP, true, 64},
		{Instr{Op: OpCall, Target: "f"}, RSP, true, 64},
		{Instr{Op: OpJmp, Target: "l"}, RegNone, false, 0},
		{Instr{Op: OpJcc, Cond: CondE, Target: "l"}, RegNone, false, 0},
		{Instr{Op: OpLabel, Label: "l"}, RegNone, false, 0},
		{Instr{Op: OpMovSD, Size: 8, Dst: RegOp(XMM3), Src: MemOp(RBP, -8)}, XMM3, true, 64},
		{Instr{Op: OpMovSD, Size: 8, Dst: MemOp(RBP, -8), Src: RegOp(XMM3)}, RegNone, false, 0},
		{Instr{Op: OpMovSX, Size: 1, Dst: RegOp(RAX), Src: RegOp(RAX)}, RAX, true, 64},
		{Instr{Op: OpLea, Size: 8, Dst: RegOp(R10), Src: MemOp(RBP, -16)}, R10, true, 64},
	}
	for i, c := range cases {
		reg, has := c.in.HasDest()
		if reg != c.reg || has != c.has {
			t.Errorf("case %d (%v): HasDest = (%v, %v), want (%v, %v)", i, c.in.Op, reg, has, c.reg, c.has)
		}
		if got := c.in.DestBits(); got != c.bits {
			t.Errorf("case %d (%v): DestBits = %d, want %d", i, c.in.Op, got, c.bits)
		}
	}
}

func TestRegClassification(t *testing.T) {
	if !RAX.IsGPR() || RAX.IsXMM() {
		t.Error("RAX misclassified")
	}
	if !XMM0.IsXMM() || XMM0.IsGPR() {
		t.Error("XMM0 misclassified")
	}
	if RFLAGS.IsGPR() || RFLAGS.IsXMM() {
		t.Error("RFLAGS misclassified")
	}
}

func TestProgramValidate(t *testing.T) {
	p := NewProgram()
	f := NewFunc("main")
	f.EmitLabel("entry")
	f.Emit(Instr{Op: OpJmp, Target: "entry"})
	p.AddFunc(f)
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	// Unresolved label.
	f2 := NewFunc("bad")
	f2.Emit(Instr{Op: OpJmp, Target: "nowhere"})
	p2 := NewProgram()
	p2.AddFunc(f2)
	mainF := NewFunc("main")
	mainF.Emit(Instr{Op: OpRet})
	p2.AddFunc(mainF)
	if err := p2.Validate(); err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("unresolved label not caught: %v", err)
	}

	// Unknown call target.
	f3 := NewFunc("main")
	f3.Emit(Instr{Op: OpCall, Target: "ghost"})
	p3 := NewProgram()
	p3.AddFunc(f3)
	if err := p3.Validate(); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown callee not caught: %v", err)
	}

	// Missing main.
	p4 := NewProgram()
	other := NewFunc("other")
	other.Emit(Instr{Op: OpRet})
	p4.AddFunc(other)
	if err := p4.Validate(); err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("missing main not caught: %v", err)
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	f := NewFunc("f")
	f.EmitLabel("l")
	defer func() {
		if recover() == nil {
			t.Error("duplicate label accepted")
		}
	}()
	f.EmitLabel("l")
}

func TestPrinterSmoke(t *testing.T) {
	f := NewFunc("main")
	f.EmitLabel("entry")
	f.Emit(Instr{Op: OpPush, Src: RegOp(RBP), Origin: OriginFrame})
	f.Emit(Instr{Op: OpMov, Size: 8, Dst: RegOp(RBP), Src: RegOp(RSP)})
	f.Emit(Instr{Op: OpMov, Size: 4, Dst: RegOp(RAX), Src: MemOp(RBP, -8)})
	f.Emit(Instr{Op: OpCmp, Size: 4, Dst: RegOp(RAX), Src: ImmOp(10)})
	f.Emit(Instr{Op: OpJcc, Cond: CondL, Target: "entry"})
	f.Emit(Instr{Op: OpSet, Cond: CondGE, Dst: RegOp(RCX)})
	f.Emit(Instr{Op: OpMovSD, Size: 8, Dst: RegOp(XMM1), Src: SymMemOp("pool", 8)})
	f.Emit(Instr{Op: OpRet})
	out := f.String()
	for _, want := range []string{
		"main:", ".entry:", "pushq\t%rbp", "movl\t-0x8(%rbp), %eax",
		"cmpl\t$10, %eax", "jl\t.entry", "setge\t%cl", "pool+8(", "retq",
		"origin=mapping",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q:\n%s", want, out)
		}
	}
}

func TestOriginCountsAndNumInstrs(t *testing.T) {
	p := NewProgram()
	f := NewFunc("main")
	f.EmitLabel("entry")
	f.Emit(Instr{Op: OpMov, Size: 8, Dst: RegOp(RAX), Src: ImmOp(1), Origin: OriginStoreReload})
	f.Emit(Instr{Op: OpMov, Size: 8, Dst: RegOp(RCX), Src: ImmOp(1)})
	f.Emit(Instr{Op: OpRet, Origin: OriginFrame})
	p.AddFunc(f)
	if n := p.NumInstrs(); n != 3 {
		t.Fatalf("NumInstrs = %d, want 3 (labels excluded)", n)
	}
	counts := p.OriginCounts()
	if counts[OriginStoreReload] != 1 || counts[OriginFrame] != 1 || counts[OriginNone] != 1 {
		t.Fatalf("origin counts wrong: %v", counts)
	}
}
