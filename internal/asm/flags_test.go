package asm

import (
	"math/bits"
	"testing"
)

// refSubFlags mirrors the machine simulator's setSubFlags (the semantic
// reference the lazy evaluators must agree with).
func refSubFlags(a, b uint64, size uint8) uint64 {
	w := uint(size) * 8
	mask := ^uint64(0) >> (64 - w)
	a &= mask
	b &= mask
	r := (a - b) & mask
	sign := uint64(1) << (w - 1)
	var f uint64
	if r == 0 {
		f |= FlagZF
	}
	if r&sign != 0 {
		f |= FlagSF
	}
	if ((a^b)&(a^r))&sign != 0 {
		f |= FlagOF
	}
	if a < b {
		f |= FlagCF
	}
	if bits.OnesCount8(uint8(r))%2 == 0 {
		f |= FlagPF
	}
	return f
}

func refLogicFlags(r uint64, size uint8) uint64 {
	w := uint(size) * 8
	mask := ^uint64(0) >> (64 - w)
	r &= mask
	sign := uint64(1) << (w - 1)
	var f uint64
	if r == 0 {
		f |= FlagZF
	}
	if r&sign != 0 {
		f |= FlagSF
	}
	if bits.OnesCount8(uint8(r))%2 == 0 {
		f |= FlagPF
	}
	return f
}

var allConds = []Cond{
	CondE, CondNE, CondL, CondLE, CondG, CondGE,
	CondB, CondBE, CondA, CondAE, CondP, CondNP,
}

// testValues exercises sign boundaries, carries, and parity at every
// width.
var testValues = []uint64{
	0, 1, 2, 0x7f, 0x80, 0x81, 0xff, 0x100,
	0x7fff_ffff, 0x8000_0000, 0xffff_ffff, 0x1_0000_0000,
	0x7fff_ffff_ffff_ffff, 0x8000_0000_0000_0000, ^uint64(0),
	0x0123_4567_89ab_cdef, 0xdead_beef_dead_beef,
}

func TestPFTable(t *testing.T) {
	for b := 0; b < 256; b++ {
		want := uint64(0)
		if bits.OnesCount8(uint8(b))%2 == 0 {
			want = FlagPF
		}
		if PFTable[b] != want {
			t.Fatalf("PFTable[%#x] = %#x, want %#x", b, PFTable[b], want)
		}
	}
}

func TestEvalSubMatchesMaterializedFlags(t *testing.T) {
	for _, size := range []uint8{1, 4, 8} {
		for _, a := range testValues {
			for _, b := range testValues {
				flags := refSubFlags(a, b, size)
				for _, c := range allConds {
					if got, want := c.EvalSub(a, b, size), c.Eval(flags); got != want {
						t.Fatalf("cond %v size %d: EvalSub(%#x, %#x) = %v, materialized = %v",
							c, size, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestEvalTestMatchesMaterializedFlags(t *testing.T) {
	for _, size := range []uint8{1, 4, 8} {
		for _, r := range testValues {
			flags := refLogicFlags(r, size)
			for _, c := range allConds {
				if got, want := c.EvalTest(r, size), c.Eval(flags); got != want {
					t.Fatalf("cond %v size %d: EvalTest(%#x) = %v, materialized = %v",
						c, size, r, got, want)
				}
			}
		}
	}
}

// TestFlagsReadMatchesEval is the exhaustive flip test FlagsRead's doc
// promises: over all 2^5 defined-flag words, Eval must be insensitive to
// every bit outside FlagsRead (soundness of the slack the masking
// analysis exploits), and every bit inside FlagsRead must change Eval's
// verdict for some word (the set is tight, not just an over-
// approximation).
func TestFlagsReadMatchesEval(t *testing.T) {
	for _, c := range allConds {
		read := c.FlagsRead()
		sensitive := uint64(0)
		for w := 0; w < 1<<len(DefinedFlags); w++ {
			var flags uint64
			for i, f := range DefinedFlags {
				if w&(1<<i) != 0 {
					flags |= f
				}
			}
			base := c.Eval(flags)
			for _, f := range DefinedFlags {
				if c.Eval(flags^f) != base {
					sensitive |= f
					if read&f == 0 {
						t.Fatalf("cond %v: flipping flag %#x changes Eval(%#x) but FlagsRead omits it", c, f, flags)
					}
				}
			}
		}
		if sensitive != read {
			t.Fatalf("cond %v: FlagsRead = %#x but Eval only depends on %#x", c, read, sensitive)
		}
	}
}

func TestFlagsMetadata(t *testing.T) {
	for op := OpInvalid; op <= OpLabel; op++ {
		wantW := op == OpCmp || op == OpTest || op == OpUComiSD
		if op.WritesFlags() != wantW {
			t.Fatalf("%v.WritesFlags() = %v", op, !wantW)
		}
		wantR := op == OpJcc || op == OpSet
		if op.ReadsFlags() != wantR {
			t.Fatalf("%v.ReadsFlags() = %v", op, !wantR)
		}
	}
}
