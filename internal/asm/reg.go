// Package asm defines the x86-64-like assembly language that the backend
// emits and the machine simulator executes. The subset is modeled on what
// clang -O0 produces for the IR in this repository: rbp-framed functions,
// slot-homed values, cmp/test + conditional jumps, SSE scalar doubles,
// and the System V calling convention.
//
// Every instruction carries a provenance Origin assigned by the backend;
// the fault-injection analysis uses it to classify assembly-level SDCs
// into the paper's five penetration categories.
package asm

// Reg names an architectural register.
type Reg uint8

const (
	RegNone Reg = iota
	// General-purpose registers.
	RAX
	RBX
	RCX
	RDX
	RSI
	RDI
	RBP
	RSP
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// SSE registers (scalar double only).
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	// RFLAGS as an injectable destination (cmp/test/ucomisd).
	RFLAGS
	// RIP as an injectable destination (ret).
	RIP

	NumRegs = int(RIP) + 1
)

var regNames = [...]string{
	RegNone: "none",
	RAX:     "rax", RBX: "rbx", RCX: "rcx", RDX: "rdx",
	RSI: "rsi", RDI: "rdi", RBP: "rbp", RSP: "rsp",
	R8: "r8", R9: "r9", R10: "r10", R11: "r11",
	R12: "r12", R13: "r13", R14: "r14", R15: "r15",
	XMM0: "xmm0", XMM1: "xmm1", XMM2: "xmm2", XMM3: "xmm3",
	XMM4: "xmm4", XMM5: "xmm5", XMM6: "xmm6", XMM7: "xmm7",
	RFLAGS: "rflags", RIP: "rip",
}

func (r Reg) String() string {
	if int(r) < len(regNames) {
		return "%" + regNames[r]
	}
	return "%reg?"
}

// IsXMM reports whether r is an SSE register.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM7 }

// IsGPR reports whether r is a general-purpose register.
func (r Reg) IsGPR() bool { return r >= RAX && r <= R15 }

// IntArgRegs is the System V AMD64 integer argument register order.
var IntArgRegs = []Reg{RDI, RSI, RDX, RCX, R8, R9}

// FloatArgRegs is the System V AMD64 float argument register order.
var FloatArgRegs = []Reg{XMM0, XMM1, XMM2, XMM3, XMM4, XMM5, XMM6, XMM7}

// Flag bits within the simulated RFLAGS (real x86 bit positions).
const (
	FlagCF uint64 = 1 << 0
	FlagPF uint64 = 1 << 2
	FlagZF uint64 = 1 << 6
	FlagSF uint64 = 1 << 7
	FlagOF uint64 = 1 << 11
)

// DefinedFlags lists the flag bits the simulator models; fault injection
// into RFLAGS flips one of these.
var DefinedFlags = []uint64{FlagCF, FlagPF, FlagZF, FlagSF, FlagOF}
