package asm

// Flag metadata shared by the two execution cores of the machine
// simulator: the precomputed parity table both flag computations index
// instead of counting bits, the lazy condition evaluators the predecoded
// fast core uses to decide branches without materializing RFLAGS, and
// the op→flags facts the predecoder's cmp+jcc fusion relies on (see
// internal/machine and DESIGN.md §11).

// PFTable maps the low result byte to its PF contribution: FlagPF when
// the byte has even parity (x86 PF semantics), 0 otherwise.
var PFTable = func() [256]uint64 {
	var t [256]uint64
	for b := 0; b < 256; b++ {
		ones := 0
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				ones++
			}
		}
		if ones%2 == 0 {
			t[b] = FlagPF
		}
	}
	return t
}()

// widthMask returns the value mask for an operation width in bytes.
func widthMask(size uint8) uint64 {
	return ^uint64(0) >> (64 - 8*uint(size))
}

// EvalSub evaluates c directly against the operands of a cmp a,b at the
// given width, without materializing a flags word. It is exactly
// equivalent to Eval applied to the flags cmp would set: ZF ⇔ a=b,
// CF ⇔ a<b unsigned, SF≠OF ⇔ a<b signed, PF from the low result byte.
func (c Cond) EvalSub(a, b uint64, size uint8) bool {
	mask := widthMask(size)
	a &= mask
	b &= mask
	switch c {
	case CondE:
		return a == b
	case CondNE:
		return a != b
	case CondB:
		return a < b
	case CondBE:
		return a <= b
	case CondA:
		return a > b
	case CondAE:
		return a >= b
	case CondP:
		return PFTable[uint8(a-b)] != 0
	case CondNP:
		return PFTable[uint8(a-b)] == 0
	}
	sign := uint64(1) << (8*uint(size) - 1)
	as := int64(a | -(a & sign)) // sign-extend from the operation width
	bs := int64(b | -(b & sign))
	switch c {
	case CondL:
		return as < bs
	case CondLE:
		return as <= bs
	case CondG:
		return as > bs
	case CondGE:
		return as >= bs
	default:
		return false
	}
}

// EvalTest evaluates c directly against the result of a test (logic)
// operation at the given width: OF=CF=0, so the signed and unsigned
// condition families collapse onto ZF and SF.
func (c Cond) EvalTest(r uint64, size uint8) bool {
	r &= widthMask(size)
	sf := r&(1<<(8*uint(size)-1)) != 0
	switch c {
	case CondE:
		return r == 0
	case CondNE:
		return r != 0
	case CondL:
		return sf // SF != OF with OF=0
	case CondLE:
		return r == 0 || sf
	case CondG:
		return r != 0 && !sf
	case CondGE:
		return !sf
	case CondB:
		return false // CF=0
	case CondBE:
		return r == 0
	case CondA:
		return r != 0
	case CondAE:
		return true
	case CondP:
		return PFTable[uint8(r)] != 0
	case CondNP:
		return PFTable[uint8(r)] == 0
	default:
		return false
	}
}

// FlagsRead returns the set of RFLAGS bits (FlagCF..FlagOF) the
// condition inspects. Flags outside the set are slack: a flag consumer
// with this condition is insensitive to them, which is what lets the
// static masking analysis prove e.g. CF/PF/OF injections benign ahead
// of a bare CondE branch. Consistency with Eval is enforced by an
// exhaustive flip test in flags_test.go.
func (c Cond) FlagsRead() uint64 {
	switch c {
	case CondE, CondNE:
		return FlagZF
	case CondL, CondGE:
		return FlagSF | FlagOF
	case CondLE, CondG:
		return FlagZF | FlagSF | FlagOF
	case CondB, CondAE:
		return FlagCF
	case CondBE, CondA:
		return FlagCF | FlagZF
	case CondP, CondNP:
		return FlagPF
	default:
		return 0
	}
}

// WritesFlags reports whether the op defines RFLAGS. These are the ops a
// predecoder may pair with a following flag consumer into a
// superinstruction.
func (o Op) WritesFlags() bool {
	return o == OpCmp || o == OpTest || o == OpUComiSD
}

// ReadsFlags reports whether the op consumes RFLAGS — the points where a
// lazily-recorded flag state must be evaluated (or materialized).
func (o Op) ReadsFlags() bool {
	return o == OpJcc || o == OpSet
}
