package asm

import (
	"fmt"
	"strings"
)

// String renders the program in AT&T-flavoured assembly for human
// inspection (examples, debugging, and the root-cause demo binary).
func (p *Program) String() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders one function.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:\n", f.Name)
	for _, in := range f.Instrs {
		if in.Op == OpLabel {
			fmt.Fprintf(&sb, ".%s:\n", in.Label)
			continue
		}
		sb.WriteString("\t")
		sb.WriteString(in.String())
		if in.Origin != OriginNone {
			sb.WriteString("\t# origin=" + in.Origin.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// String renders one instruction in AT&T syntax (src, dst order).
func (in *Instr) String() string {
	suffix := ""
	switch in.Size {
	case 1:
		suffix = "b"
	case 4:
		suffix = "l"
	case 8:
		suffix = "q"
	}
	switch in.Op {
	case OpLabel:
		return "." + in.Label + ":"
	case OpJmp:
		return "jmp\t." + in.Target
	case OpJcc:
		return "j" + in.Cond.String() + "\t." + in.Target
	case OpCall:
		return "callq\t" + in.Target
	case OpRet:
		return "retq"
	case OpSet:
		return "set" + in.Cond.String() + "\t" + in.Dst.atT(1)
	case OpCqo:
		if in.Size == 4 {
			return "cltd"
		}
		return "cqto"
	case OpIDiv:
		return "idiv" + suffix + "\t" + in.Src.atT(in.Size)
	case OpNeg:
		return "neg" + suffix + "\t" + in.Dst.atT(in.Size)
	case OpPush:
		return "pushq\t" + in.Src.atT(8)
	case OpPop:
		return "popq\t" + in.Dst.atT(8)
	case OpMovSX:
		return fmt.Sprintf("movsx%s\t%s, %s", suffix, in.Src.atT(in.Size), in.Dst.atT(8))
	case OpMovZX:
		return fmt.Sprintf("movzx%s\t%s, %s", suffix, in.Src.atT(in.Size), in.Dst.atT(8))
	case OpLea:
		return fmt.Sprintf("leaq\t%s, %s", in.Src.atT(8), in.Dst.atT(8))
	case OpMovSD, OpAddSD, OpSubSD, OpMulSD, OpDivSD, OpUComiSD:
		return fmt.Sprintf("%s\t%s, %s", in.Op, in.Src.atT(8), in.Dst.atT(8))
	case OpCvtSI2SD:
		return fmt.Sprintf("cvtsi2sd%s\t%s, %s", suffix, in.Src.atT(in.Size), in.Dst.atT(8))
	case OpCvtSD2SI:
		return fmt.Sprintf("cvttsd2si%s\t%s, %s", suffix, in.Src.atT(8), in.Dst.atT(in.Size))
	default:
		return fmt.Sprintf("%s%s\t%s, %s", in.Op, suffix, in.Src.atT(in.Size), in.Dst.atT(in.Size))
	}
}

// atT renders an operand in AT&T syntax at the given width.
func (o Operand) atT(size uint8) string {
	switch o.Kind {
	case OperandReg:
		return regName(o.Reg, size)
	case OperandImm:
		if o.Sym != "" {
			if o.Imm != 0 {
				return fmt.Sprintf("$%s+%d", o.Sym, o.Imm)
			}
			return "$" + o.Sym
		}
		return fmt.Sprintf("$%d", o.Imm)
	case OperandMem:
		idx := ""
		if o.Index != RegNone {
			idx = fmt.Sprintf(",%s,%d", regName(o.Index, 8), o.Scale)
		}
		if o.Sym != "" {
			if o.Imm != 0 {
				return fmt.Sprintf("%s+%d(%s)", o.Sym, o.Imm, idx)
			}
			return fmt.Sprintf("%s(%s)", o.Sym, idx)
		}
		if o.Reg == RegNone {
			return fmt.Sprintf("0x%x(%s)", o.Imm, idx)
		}
		if o.Imm == 0 && idx == "" {
			return fmt.Sprintf("(%s)", regName(o.Reg, 8))
		}
		return fmt.Sprintf("%#x(%s%s)", o.Imm, regName(o.Reg, 8), idx)
	default:
		return "?"
	}
}

// regName returns the width-specific x86 register name.
func regName(r Reg, size uint8) string {
	if r.IsXMM() || r == RFLAGS || r == RIP {
		return r.String()
	}
	base := regNames[r]
	switch size {
	case 8:
		return "%" + base
	case 4:
		switch r {
		case RAX, RBX, RCX, RDX:
			return "%e" + base[1:]
		case RSI, RDI, RBP, RSP:
			return "%e" + base[1:]
		default:
			return "%" + base + "d"
		}
	case 1:
		switch r {
		case RAX, RBX, RCX, RDX:
			return "%" + base[1:2] + "l"
		case RSI, RDI, RBP, RSP:
			return "%" + base[1:] + "l"
		default:
			return "%" + base + "b"
		}
	default:
		return "%" + base
	}
}
