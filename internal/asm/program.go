package asm

import (
	"fmt"
	"sort"
)

// Func is one compiled function: a flat instruction list with local
// labels resolved to indices.
type Func struct {
	Name   string
	Instrs []Instr
	// labelIdx maps a local label to the index of its OpLabel marker.
	labelIdx map[string]int
	// FrameSize is the rbp-relative frame extent in bytes (the amount
	// subtracted from rsp in the prologue).
	FrameSize int64
}

// NewFunc returns an empty function body.
func NewFunc(name string) *Func {
	return &Func{Name: name, labelIdx: make(map[string]int)}
}

// Emit appends an instruction and returns its index.
func (f *Func) Emit(in Instr) int {
	f.Instrs = append(f.Instrs, in)
	return len(f.Instrs) - 1
}

// EmitLabel appends a label pseudo-instruction.
func (f *Func) EmitLabel(name string) {
	if _, dup := f.labelIdx[name]; dup {
		panic(fmt.Sprintf("asm: duplicate label %q in %s", name, f.Name))
	}
	f.labelIdx[name] = len(f.Instrs)
	f.Emit(Instr{Op: OpLabel, Label: name})
}

// LabelIndex resolves a local label to an instruction index.
func (f *Func) LabelIndex(name string) (int, bool) {
	i, ok := f.labelIdx[name]
	return i, ok
}

// Validate checks that all local jump targets resolve.
func (f *Func) Validate() error {
	for i, in := range f.Instrs {
		switch in.Op {
		case OpJmp, OpJcc:
			if _, ok := f.labelIdx[in.Target]; !ok {
				return fmt.Errorf("asm: %s[%d]: unresolved label %q", f.Name, i, in.Target)
			}
		}
	}
	return nil
}

// Program is a complete lowered module.
type Program struct {
	Funcs []*Func
	// Externals lists runtime functions callable by name.
	Externals map[string]bool

	funcByName map[string]*Func
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{
		Externals:  make(map[string]bool),
		funcByName: make(map[string]*Func),
	}
}

// AddFunc registers a function body.
func (p *Program) AddFunc(f *Func) {
	if _, dup := p.funcByName[f.Name]; dup {
		panic(fmt.Sprintf("asm: duplicate function %q", f.Name))
	}
	p.Funcs = append(p.Funcs, f)
	p.funcByName[f.Name] = f
}

// Func looks a function up by name.
func (p *Program) Func(name string) *Func { return p.funcByName[name] }

// Validate checks every function and that call targets exist.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if err := f.Validate(); err != nil {
			return err
		}
		for i, in := range f.Instrs {
			if in.Op == OpCall {
				if p.funcByName[in.Target] == nil && !p.Externals[in.Target] {
					return fmt.Errorf("asm: %s[%d]: call to unknown %q", f.Name, i, in.Target)
				}
			}
		}
	}
	if p.funcByName["main"] == nil {
		return fmt.Errorf("asm: program has no main")
	}
	return nil
}

// NumInstrs returns the static instruction count (labels excluded).
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		for _, in := range f.Instrs {
			if in.Op != OpLabel {
				n++
			}
		}
	}
	return n
}

// OriginCounts tallies static instructions by origin tag, labels excluded.
func (p *Program) OriginCounts() map[Origin]int {
	counts := make(map[Origin]int)
	for _, f := range p.Funcs {
		for _, in := range f.Instrs {
			if in.Op != OpLabel {
				counts[in.Origin]++
			}
		}
	}
	return counts
}

// SortedFuncs returns functions sorted by name for deterministic output.
func (p *Program) SortedFuncs() []*Func {
	fs := append([]*Func(nil), p.Funcs...)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Name < fs[j].Name })
	return fs
}
