package asm

import "fmt"

// Op enumerates assembly opcodes.
type Op uint8

const (
	OpInvalid Op = iota

	// OpMov moves Size bytes Src→Dst. 32-bit register destinations
	// zero-extend to 64 bits; 8-bit destinations merge into the low byte
	// (x86 semantics).
	OpMov
	// OpMovSX sign-extends a Size-byte source into a 64-bit register.
	OpMovSX
	// OpMovZX zero-extends a Size-byte source into a 64-bit register.
	OpMovZX
	// OpLea computes the effective address of the Src memory operand.
	OpLea

	// Integer ALU ops: Dst = Dst <op> Src at width Size.
	OpAdd
	OpSub
	OpIMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpSar
	OpShr
	OpNeg

	// OpCqo sign-extends RAX into RDX:RAX (width from Size: 4 = cdq,
	// 8 = cqo).
	OpCqo
	// OpIDiv divides RDX:RAX by Src; quotient→RAX, remainder→RDX.
	OpIDiv

	// OpCmp computes Dst-Src and sets flags (destination = RFLAGS).
	OpCmp
	// OpTest computes Dst&Src and sets flags (destination = RFLAGS).
	OpTest
	// OpSet materializes condition Cond into the 8-bit Dst register.
	OpSet

	// SSE scalar double ops.
	OpMovSD
	OpAddSD
	OpSubSD
	OpMulSD
	OpDivSD
	OpUComiSD  // sets flags from a double compare
	OpCvtSI2SD // int (width Size) → double
	OpCvtSD2SI // double → int (width Size), truncating

	// Control flow.
	OpJmp
	OpJcc
	OpCall
	OpRet
	OpPush
	OpPop

	// OpLabel is a pseudo-instruction marking a local jump target; it
	// executes as a no-op and costs no dynamic instruction.
	OpLabel
)

var asmOpNames = [...]string{
	OpInvalid: "invalid",
	OpMov:     "mov", OpMovSX: "movsx", OpMovZX: "movzx", OpLea: "lea",
	OpAdd: "add", OpSub: "sub", OpIMul: "imul",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpSar: "sar", OpShr: "shr", OpNeg: "neg",
	OpCqo: "cqo", OpIDiv: "idiv",
	OpCmp: "cmp", OpTest: "test", OpSet: "set",
	OpMovSD: "movsd", OpAddSD: "addsd", OpSubSD: "subsd",
	OpMulSD: "mulsd", OpDivSD: "divsd", OpUComiSD: "ucomisd",
	OpCvtSI2SD: "cvtsi2sd", OpCvtSD2SI: "cvttsd2si",
	OpJmp: "jmp", OpJcc: "j", OpCall: "callq", OpRet: "retq",
	OpPush: "push", OpPop: "pop",
	OpLabel: "label",
}

func (o Op) String() string {
	if int(o) < len(asmOpNames) {
		return asmOpNames[o]
	}
	return fmt.Sprintf("asmop(%d)", uint8(o))
}

// Cond enumerates x86 condition codes used by Jcc and SETcc.
type Cond uint8

const (
	CondNone Cond = iota
	CondE         // ZF
	CondNE        // !ZF
	CondL         // SF != OF
	CondLE        // ZF || SF != OF
	CondG         // !ZF && SF == OF
	CondGE        // SF == OF
	CondB         // CF
	CondBE        // CF || ZF
	CondA         // !CF && !ZF
	CondAE        // !CF
	CondP         // PF
	CondNP        // !PF
)

var condNames = [...]string{
	CondNone: "?", CondE: "e", CondNE: "ne",
	CondL: "l", CondLE: "le", CondG: "g", CondGE: "ge",
	CondB: "b", CondBE: "be", CondA: "a", CondAE: "ae",
	CondP: "p", CondNP: "np",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "?"
}

// Eval evaluates the condition against a flags word.
func (c Cond) Eval(flags uint64) bool {
	zf := flags&FlagZF != 0
	sf := flags&FlagSF != 0
	of := flags&FlagOF != 0
	cf := flags&FlagCF != 0
	pf := flags&FlagPF != 0
	switch c {
	case CondE:
		return zf
	case CondNE:
		return !zf
	case CondL:
		return sf != of
	case CondLE:
		return zf || sf != of
	case CondG:
		return !zf && sf == of
	case CondGE:
		return sf == of
	case CondB:
		return cf
	case CondBE:
		return cf || zf
	case CondA:
		return !cf && !zf
	case CondAE:
		return !cf
	case CondP:
		return pf
	case CondNP:
		return !pf
	default:
		return false
	}
}

// Origin classifies where an instruction came from, for root-cause
// attribution of assembly-level SDCs (the paper's five penetrations).
type Origin uint8

const (
	// OriginNone marks ordinary computation that has a matching
	// injection site at IR level.
	OriginNone Origin = iota
	// OriginStoreReload marks the extra moves a store needs when its
	// value (or address) had to be re-fetched from a stack slot —
	// store penetration.
	OriginStoreReload
	// OriginBranchTest marks the condition reload and test emitted for
	// a conditional branch that could not fuse with its compare —
	// branch penetration.
	OriginBranchTest
	// OriginCmpFolded marks compare materialization left unprotected
	// after the backend folded away a duplicated comparison check —
	// comparison penetration.
	OriginCmpFolded
	// OriginCallArg marks argument/return-value register setup around
	// calls — call penetration.
	OriginCallArg
	// OriginFrame marks prologue/epilogue stack management that has no
	// IR counterpart — mapping penetration.
	OriginFrame
)

var originNames = [...]string{
	OriginNone:        "none",
	OriginStoreReload: "store",
	OriginBranchTest:  "branch",
	OriginCmpFolded:   "cmp",
	OriginCallArg:     "call",
	OriginFrame:       "mapping",
}

func (o Origin) String() string {
	if int(o) < len(originNames) {
		return originNames[o]
	}
	return "origin?"
}

// NumOrigins is the number of Origin values.
const NumOrigins = int(OriginFrame) + 1

// OperandKind discriminates Operand payloads.
type OperandKind uint8

const (
	OperandNone OperandKind = iota
	OperandReg
	OperandImm
	// OperandMem is base + disp + index*scale.
	OperandMem
)

// Operand is one instruction operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Imm   int64 // immediate value, or displacement for OperandMem
	Index Reg   // optional index register for OperandMem
	Scale int64 // index scale for OperandMem
	// Sym, when non-empty, names a global whose assigned address is
	// added to Imm when the program is loaded into a machine (a
	// relocation). Valid for OperandImm and OperandMem.
	Sym string
}

// RegOp returns a register operand.
func RegOp(r Reg) Operand { return Operand{Kind: OperandReg, Reg: r} }

// ImmOp returns an immediate operand.
func ImmOp(v int64) Operand { return Operand{Kind: OperandImm, Imm: v} }

// MemOp returns a base+disp memory operand.
func MemOp(base Reg, disp int64) Operand {
	return Operand{Kind: OperandMem, Reg: base, Imm: disp}
}

// MemIdxOp returns a base+disp+index*scale memory operand.
func MemIdxOp(base Reg, disp int64, index Reg, scale int64) Operand {
	return Operand{Kind: OperandMem, Reg: base, Imm: disp, Index: index, Scale: scale}
}

// SymImmOp returns an immediate that resolves to the address of a global
// plus disp.
func SymImmOp(sym string, disp int64) Operand {
	return Operand{Kind: OperandImm, Imm: disp, Sym: sym}
}

// SymMemOp returns a memory operand addressing a global plus disp.
func SymMemOp(sym string, disp int64) Operand {
	return Operand{Kind: OperandMem, Imm: disp, Sym: sym}
}

// Instr is one assembly instruction.
type Instr struct {
	Op   Op
	Size uint8 // operation width in bytes (1, 4, or 8)
	Cond Cond  // for OpJcc / OpSet

	Dst Operand
	Src Operand

	// Target is the label for jumps (local, within the function) or the
	// callee name for OpCall.
	Target string
	// Label is the name defined by an OpLabel pseudo-instruction.
	Label string

	// Origin is the provenance tag used for penetration classification.
	Origin Origin
	// Checker marks instructions belonging to a duplication checker.
	Checker bool
}

// HasDest reports whether the instruction writes an injectable
// destination, and which register it is. This defines the assembly-level
// fault-injection site set: every dynamic instance of an instruction with
// a destination register (including RFLAGS and RIP) is a site, matching
// PIN-based injectors.
func (in *Instr) HasDest() (Reg, bool) {
	switch in.Op {
	case OpMov, OpMovSX, OpMovZX, OpLea, OpMovSD:
		if in.Dst.Kind == OperandReg {
			return in.Dst.Reg, true
		}
		return RegNone, false // stores to memory have no register dest
	case OpAdd, OpSub, OpIMul, OpAnd, OpOr, OpXor, OpShl, OpSar, OpShr, OpNeg,
		OpAddSD, OpSubSD, OpMulSD, OpDivSD, OpSet, OpCvtSI2SD, OpCvtSD2SI:
		if in.Dst.Kind == OperandReg {
			return in.Dst.Reg, true
		}
		return RegNone, false
	case OpCmp, OpTest, OpUComiSD:
		return RFLAGS, true
	case OpIDiv:
		return RAX, true
	case OpCqo:
		return RDX, true
	case OpPop:
		if in.Dst.Kind == OperandReg {
			return in.Dst.Reg, true
		}
		return RegNone, false
	case OpPush, OpCall:
		return RSP, true
	case OpRet:
		return RIP, true
	default:
		return RegNone, false
	}
}

// DestBits returns the injectable width in bits of the destination. For
// RFLAGS the width is the number of modeled flag bits.
func (in *Instr) DestBits() int {
	r, ok := in.HasDest()
	if !ok {
		return 0
	}
	switch {
	case r == RFLAGS:
		return len(DefinedFlags)
	case r == RIP, r == RSP:
		return 64
	case r.IsXMM():
		return 64
	}
	switch in.Op {
	case OpMovSX, OpMovZX, OpLea, OpPop, OpCvtSI2SD:
		return 64
	case OpSet:
		return 8
	}
	switch in.Size {
	case 1:
		return 8
	case 4:
		return 32
	default:
		return 64
	}
}
