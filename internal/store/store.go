// Package store is the content-keyed artifact store behind the pipeline
// cache's persistent tier. A Store maps opaque string keys — the same
// key strings the pipeline's in-memory memoization uses — to immutable
// byte blobs, so a campaign artifact computed once can be recalled by
// any later request, any later process, or (through cmd/floweryd) any
// later client with the same spec.
//
// Two implementations share the interface and, by construction, the key
// space:
//
//   - Memory is a mutex-guarded map: the daemon's default when no store
//     directory is configured, shared across requests but not restarts.
//   - Disk is a sha256-addressed CAS under one directory: blobs written
//     atomically (temp file + rename), an append-only index manifest
//     mapping keys to blob hashes, and an LRU byte cap that evicts the
//     least-recently-used keys when the configured budget is exceeded.
//
// The two are interchangeable bit for bit — a pipeline run against
// either stores and recalls identical blobs under identical keys, which
// internal/pipeline's memory-vs-disk identity test gates.
package store

import (
	"sync"

	"flowery/internal/telemetry"
)

// Store is a content-keyed blob store. Implementations must be safe for
// concurrent use; blobs are immutable once stored (a Put over an
// existing key replaces the mapping, never mutates a returned blob).
type Store interface {
	// Get returns the blob stored under key, or ok=false when absent.
	// The returned slice is the caller's to keep.
	Get(key string) (blob []byte, ok bool, err error)
	// Put stores blob under key, replacing any previous mapping.
	Put(key string, blob []byte) error
	// Close releases resources and flushes any pending index state.
	Close() error
}

// metrics is the counter set every implementation reports into (no-ops
// on a nil registry).
type metrics struct {
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	puts        *telemetry.Counter
	putBytes    *telemetry.Counter
	evictions   *telemetry.Counter
	errors      *telemetry.Counter
	compactions *telemetry.Counter
	bytes       *telemetry.Gauge
}

func newMetrics(reg *telemetry.Registry) metrics {
	return metrics{
		hits:        reg.Counter("store_hits_total"),
		misses:      reg.Counter("store_misses_total"),
		puts:        reg.Counter("store_puts_total"),
		putBytes:    reg.Counter("store_put_bytes_total"),
		evictions:   reg.Counter("store_evictions_total"),
		errors:      reg.Counter("store_errors_total"),
		compactions: reg.Counter("store_compactions_total"),
		bytes:       reg.Gauge("store_bytes"),
	}
}

// Memory is the in-process Store: the exact map the pipeline cache used
// before the persistent tier existed, behind the shared interface.
type Memory struct {
	mu    sync.Mutex
	m     map[string][]byte
	total int64
	mt    metrics
}

// NewMemory returns an empty in-memory store reporting into reg (nil
// disables telemetry).
func NewMemory(reg *telemetry.Registry) *Memory {
	return &Memory{m: make(map[string][]byte), mt: newMetrics(reg)}
}

// Get implements Store.
func (s *Memory) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[key]
	if !ok {
		s.mt.misses.Inc()
		return nil, false, nil
	}
	s.mt.hits.Inc()
	out := make([]byte, len(b))
	copy(out, b)
	return out, true, nil
}

// Put implements Store.
func (s *Memory) Put(key string, blob []byte) error {
	cp := make([]byte, len(blob))
	copy(cp, blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := len(s.m[key])
	s.m[key] = cp
	s.mt.puts.Inc()
	s.mt.putBytes.Add(int64(len(cp)))
	s.total += int64(len(cp)) - int64(prev)
	s.mt.bytes.Set(float64(s.total))
	return nil
}

// Keys returns every stored key (test helper; order unspecified).
func (s *Memory) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ks := make([]string, 0, len(s.m))
	for k := range s.m {
		ks = append(ks, k)
	}
	return ks
}

// Close implements Store (a no-op for the memory tier).
func (s *Memory) Close() error { return nil }
