package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flowery/internal/telemetry"
)

// Disk is the persistent Store: a sha256 content-addressed blob area
// plus an append-only index manifest mapping keys to blob hashes.
//
// Layout under the root directory:
//
//	index.log        one JSON line per mutation: {"k":key,"b":hexhash,
//	                 "s":size} for a put, {"k":key,"d":true} for an
//	                 eviction; later lines win. Rewritten compactly
//	                 (atomic rename) on Close.
//	objects/ab/<hex> blob content, named by its sha256; written to tmp/
//	                 and renamed into place, so a reader never observes
//	                 a partial blob and a crash leaves only garbage in
//	                 tmp/ (cleared on open).
//	tmp/             staging area for atomic writes.
//
// Two keys with identical content share one blob (the object layer is
// content-addressed; the index layer holds per-key references). Get
// re-hashes the blob it reads and treats a mismatch as a miss, so a
// corrupted object degrades to recomputation, never to a wrong artifact.
//
// MaxBytes caps the total size of live blobs: each Put evicts
// least-recently-used keys (Get refreshes recency; the order persists
// across restarts through the index line order) until the new total
// fits. The entry just written is never evicted by its own Put.
type Disk struct {
	root string
	max  int64

	mu    sync.Mutex
	index map[string]*diskEntry // key → entry
	refs  map[string]int        // blob hash → number of keys referencing it
	order []string              // keys, least recently used first
	total int64                 // live blob bytes (each distinct blob counted once)
	log   *os.File              // append handle for index.log
	mt    metrics
}

type diskEntry struct {
	hash string
	size int64
}

// indexLine is the manifest's wire form.
type indexLine struct {
	K string `json:"k"`
	B string `json:"b,omitempty"`
	S int64  `json:"s,omitempty"`
	D bool   `json:"d,omitempty"`
}

// DiskOptions tunes OpenDisk.
type DiskOptions struct {
	// MaxBytes caps the total live blob size; 0 means unlimited.
	MaxBytes int64
	// Metrics receives the store_* counters (nil disables telemetry).
	Metrics *telemetry.Registry
}

// OpenDisk opens (creating if needed) the persistent store rooted at
// dir and replays its index manifest.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	for _, sub := range []string{"", "objects", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Anything in tmp/ is a crashed half-write; blobs are only ever
	// complete once renamed out of it.
	if ents, err := os.ReadDir(filepath.Join(dir, "tmp")); err == nil {
		for _, e := range ents {
			os.Remove(filepath.Join(dir, "tmp", e.Name()))
		}
	}
	d := &Disk{
		root:  dir,
		max:   opts.MaxBytes,
		index: make(map[string]*diskEntry),
		refs:  make(map[string]int),
		mt:    newMetrics(opts.Metrics),
	}
	lines, err := d.loadIndex()
	if err != nil {
		return nil, err
	}
	d.sweepObjects()
	// A store abandoned without Close leaves every superseded put and
	// eviction tombstone in the manifest. Replay tolerates them, but they
	// cost startup time and disk forever, so once dead lines outnumber
	// live entries the manifest is rewritten compactly — the same
	// rewrite Close performs, just brought forward.
	if dead := lines - len(d.index); dead > len(d.index) && dead > 0 {
		if err := d.rewriteIndexLocked(); err != nil {
			return nil, err
		}
		d.mt.compactions.Inc()
	}
	log, err := os.OpenFile(d.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d.log = log
	d.mt.bytes.Set(float64(d.total))
	return d, nil
}

func (d *Disk) indexPath() string { return filepath.Join(d.root, "index.log") }

func (d *Disk) objectPath(hash string) string {
	return filepath.Join(d.root, "objects", hash[:2], hash[2:])
}

// loadIndex replays the manifest, returning the number of lines
// consumed (the open-time compaction trigger compares it against the
// live entry count). Unparseable lines (a torn final append after a
// crash) end the replay; entries whose blob is missing are dropped. The
// surviving line order doubles as the initial LRU order: compaction
// writes entries least-recently-used first.
func (d *Disk) loadIndex() (int, error) {
	f, err := os.Open(d.indexPath())
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var ln indexLine
		if json.Unmarshal(sc.Bytes(), &ln) != nil || ln.K == "" {
			lines++ // the torn tail itself is dead weight
			break   // everything before it is intact
		}
		lines++
		if ln.D {
			d.forgetLocked(ln.K)
			continue
		}
		if len(ln.B) != sha256.Size*2 {
			continue
		}
		if _, err := os.Stat(d.objectPath(ln.B)); err != nil {
			continue // blob vanished; key is unrecoverable
		}
		d.forgetLocked(ln.K) // re-put: refresh order and refs
		d.index[ln.K] = &diskEntry{hash: ln.B, size: ln.S}
		d.order = append(d.order, ln.K)
		d.refs[ln.B]++
		if d.refs[ln.B] == 1 {
			d.total += ln.S
		}
	}
	return lines, sc.Err()
}

// forgetLocked removes key from the in-memory index without touching
// blob files — the replay path, where a later line may reference the
// same blob. Unreferenced blobs left behind are swept after replay.
func (d *Disk) forgetLocked(key string) {
	e := d.index[key]
	if e == nil {
		return
	}
	delete(d.index, key)
	for i, k := range d.order {
		if k == key {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.refs[e.hash]--
	if d.refs[e.hash] <= 0 {
		delete(d.refs, e.hash)
		d.total -= e.size
	}
}

// sweepObjects deletes object files no live index entry references —
// eviction tombstones whose removal crashed, or blobs orphaned by a
// torn index tail.
func (d *Disk) sweepObjects() {
	fans, err := os.ReadDir(filepath.Join(d.root, "objects"))
	if err != nil {
		return
	}
	for _, fan := range fans {
		if !fan.IsDir() {
			continue
		}
		dir := filepath.Join(d.root, "objects", fan.Name())
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range ents {
			if d.refs[fan.Name()+e.Name()] == 0 {
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
}

// dropLocked removes key from the in-memory index (no manifest write),
// deleting its blob when the last reference goes.
func (d *Disk) dropLocked(key string) {
	e := d.index[key]
	if e == nil {
		return
	}
	delete(d.index, key)
	for i, k := range d.order {
		if k == key {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.refs[e.hash]--
	if d.refs[e.hash] <= 0 {
		delete(d.refs, e.hash)
		d.total -= e.size
		os.Remove(d.objectPath(e.hash))
	}
}

// touchLocked moves key to the most-recently-used end.
func (d *Disk) touchLocked(key string) {
	for i, k := range d.order {
		if k == key {
			d.order = append(d.order[:i], d.order[i+1:]...)
			d.order = append(d.order, key)
			return
		}
	}
}

func (d *Disk) appendLine(ln indexLine) error {
	b, err := json.Marshal(ln)
	if err != nil {
		return err
	}
	_, err = d.log.Write(append(b, '\n'))
	return err
}

// Get implements Store.
func (d *Disk) Get(key string) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e := d.index[key]
	if e == nil {
		d.mt.misses.Inc()
		return nil, false, nil
	}
	blob, err := os.ReadFile(d.objectPath(e.hash))
	if err != nil {
		// The blob is gone (external deletion); degrade to a miss and
		// forget the key so the next Put repairs the store.
		d.mt.errors.Inc()
		d.mt.misses.Inc()
		d.dropLocked(key)
		return nil, false, nil
	}
	if sum := sha256.Sum256(blob); hex.EncodeToString(sum[:]) != e.hash {
		// Content rot: a CAS blob that no longer matches its address is
		// a miss, never a wrong answer.
		d.mt.errors.Inc()
		d.mt.misses.Inc()
		d.dropLocked(key)
		return nil, false, nil
	}
	d.touchLocked(key)
	d.mt.hits.Inc()
	return blob, true, nil
}

// Put implements Store.
func (d *Disk) Put(key string, blob []byte) error {
	sum := sha256.Sum256(blob)
	hash := hex.EncodeToString(sum[:])

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return fmt.Errorf("store: put %q on closed store", key)
	}
	if e := d.index[key]; e != nil && e.hash == hash {
		d.touchLocked(key) // idempotent re-put: refresh recency only
		return nil
	}
	if d.refs[hash] == 0 {
		if err := d.writeObject(hash, blob); err != nil {
			d.mt.errors.Inc()
			return err
		}
	}
	d.dropLocked(key)
	d.index[key] = &diskEntry{hash: hash, size: int64(len(blob))}
	d.order = append(d.order, key)
	d.refs[hash]++
	if d.refs[hash] == 1 {
		d.total += int64(len(blob))
	}
	if err := d.appendLine(indexLine{K: key, B: hash, S: int64(len(blob))}); err != nil {
		d.mt.errors.Inc()
		return fmt.Errorf("store: index append: %w", err)
	}
	d.mt.puts.Inc()
	d.mt.putBytes.Add(int64(len(blob)))
	d.evictLocked(key)
	d.mt.bytes.Set(float64(d.total))
	return nil
}

// writeObject stages the blob in tmp/ and renames it into the object
// area, creating the fan-out directory on demand.
func (d *Disk) writeObject(hash string, blob []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(d.root, "tmp"), "blob-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	dst := d.objectPath(hash)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(name, dst); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// evictLocked drops least-recently-used keys until the live total fits
// the cap. keep (the key just written) survives even when it alone
// exceeds the budget — evicting the artifact being stored would turn
// every oversized Put into a permanent miss.
func (d *Disk) evictLocked(keep string) {
	if d.max <= 0 {
		return
	}
	for d.total > d.max {
		victim := ""
		for _, k := range d.order {
			if k != keep {
				victim = k
				break
			}
		}
		if victim == "" {
			return
		}
		d.dropLocked(victim)
		d.appendLine(indexLine{K: victim, D: true})
		d.mt.evictions.Inc()
	}
}

// Keys returns every stored key (test helper; order unspecified).
func (d *Disk) Keys() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	ks := make([]string, 0, len(d.index))
	for k := range d.index {
		ks = append(ks, k)
	}
	return ks
}

// Len returns the number of live keys.
func (d *Disk) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.index)
}

// TotalBytes returns the live blob total (each distinct blob once).
func (d *Disk) TotalBytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// rewriteIndexLocked writes a compact manifest — one line per live key,
// LRU order preserved — and renames it over index.log atomically. The
// append handle, if open, must be reopened by the caller afterward (the
// two call sites, OpenDisk and Close, have none and are closing it
// respectively).
func (d *Disk) rewriteIndexLocked() error {
	tmp, err := os.CreateTemp(filepath.Join(d.root, "tmp"), "index-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	w := bufio.NewWriter(tmp)
	for _, k := range d.order {
		e := d.index[k]
		b, err := json.Marshal(indexLine{K: k, B: e.hash, S: e.size})
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
		w.Write(b)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), d.indexPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close compacts the index manifest via an atomic rename, then releases
// the append handle.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.log == nil {
		return nil
	}
	d.log.Close()
	d.log = nil
	return d.rewriteIndexLocked()
}
