package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"flowery/internal/telemetry"
)

// impls builds one instance of every Store implementation for t.
func impls(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return map[string]Store{
		"memory": NewMemory(nil),
		"disk":   disk,
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	for name, s := range impls(t) {
		t.Run(name, func(t *testing.T) {
			if _, ok, err := s.Get("absent"); err != nil || ok {
				t.Fatalf("Get(absent) = ok=%v err=%v", ok, err)
			}
			key := `campaign|bench:crc32|raw|asm|gpr=0|runs=40|seed=7` // pipeline-shaped key
			blob := []byte(`{"runs":40}`)
			if err := s.Put(key, blob); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.Get(key)
			if err != nil || !ok || !bytes.Equal(got, blob) {
				t.Fatalf("Get = %q ok=%v err=%v, want %q", got, ok, err, blob)
			}
			// Replacement wins.
			blob2 := []byte(`{"runs":41}`)
			if err := s.Put(key, blob2); err != nil {
				t.Fatal(err)
			}
			got, _, _ = s.Get(key)
			if !bytes.Equal(got, blob2) {
				t.Fatalf("after re-put Get = %q, want %q", got, blob2)
			}
			// Mutating a returned blob must not reach the store.
			got[0] = 'X'
			again, _, _ := s.Get(key)
			if !bytes.Equal(again, blob2) {
				t.Fatalf("store blob aliased by caller mutation: %q", again)
			}
		})
	}
}

// TestMemoryDiskBitIdentity is the store-level half of the cache-key
// compatibility gate: identical Put sequences against the two
// implementations must be recalled bit-identically under identical
// keys (the pipeline-level half lives in internal/pipeline).
func TestMemoryDiskBitIdentity(t *testing.T) {
	mem := NewMemory(nil)
	disk, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	var keys []string
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("campaign|bench:b%d|fl@0.7(seed=2023,samples=800)+ebc|asm|runs=%d", i, 100*i)
		blob := bytes.Repeat([]byte{byte(i)}, 10+i*7)
		keys = append(keys, key)
		if err := mem.Put(key, blob); err != nil {
			t.Fatal(err)
		}
		if err := disk.Put(key, blob); err != nil {
			t.Fatal(err)
		}
	}
	mk, dk := mem.Keys(), disk.Keys()
	sort.Strings(mk)
	sort.Strings(dk)
	if fmt.Sprint(mk) != fmt.Sprint(dk) {
		t.Fatalf("key sets diverge:\nmemory %v\ndisk   %v", mk, dk)
	}
	for _, k := range keys {
		mb, ok1, _ := mem.Get(k)
		db, ok2, _ := disk.Get(k)
		if !ok1 || !ok2 || !bytes.Equal(mb, db) {
			t.Fatalf("blob for %q diverges: mem ok=%v disk ok=%v", k, ok1, ok2)
		}
	}
}

func TestDiskPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d1.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i := 0; i < 5; i++ {
		got, ok, err := d2.Get(fmt.Sprintf("k%d", i))
		if err != nil || !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("after reopen Get(k%d) = %q ok=%v err=%v", i, got, ok, err)
		}
	}
}

// TestDiskPersistsWithoutClose models a crash: the append-only index
// alone (no compaction) must be enough to recover every entry.
func TestDiskPersistsWithoutClose(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("crash", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	// Deliberately no Close.
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, ok, err := d2.Get("crash")
	if err != nil || !ok || string(got) != "survives" {
		t.Fatalf("Get = %q ok=%v err=%v", got, ok, err)
	}
}

func TestDiskTornIndexTail(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d1.Put("a", []byte("alpha"))
	d1.Put("b", []byte("beta"))
	d1.Close()
	// Simulate a torn final append.
	f, err := os.OpenFile(filepath.Join(dir, "index.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"k":"c","b":"dead`)
	f.Close()
	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got, ok, _ := d2.Get("a"); !ok || string(got) != "alpha" {
		t.Fatalf("entry before torn tail lost: %q ok=%v", got, ok)
	}
	if _, ok, _ := d2.Get("c"); ok {
		t.Fatal("torn entry resurrected")
	}
	// The store must keep working after recovery.
	if err := d2.Put("c", []byte("gamma")); err != nil {
		t.Fatal(err)
	}
}

func TestDiskCorruptBlobIsAMiss(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.New()
	d, err := OpenDisk(dir, DiskOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Put("k", []byte("pristine")); err != nil {
		t.Fatal(err)
	}
	// Flip the blob behind the store's back.
	e := d.index["k"]
	if err := os.WriteFile(d.objectPath(e.hash), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := d.Get("k"); ok || err != nil {
		t.Fatalf("tampered blob served: ok=%v err=%v", ok, err)
	}
	if n := reg.Counter("store_errors_total").Value(); n == 0 {
		t.Fatal("corruption not counted in store_errors_total")
	}
}

func TestDiskLRUEviction(t *testing.T) {
	blob := bytes.Repeat([]byte("x"), 100)
	d, err := OpenDisk(t.TempDir(), DiskOptions{MaxBytes: 250})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Put("a", append([]byte("a"), blob...))
	d.Put("b", append([]byte("b"), blob...))
	// Refresh a: b becomes the LRU victim.
	if _, ok, _ := d.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	d.Put("c", append([]byte("c"), blob...))
	if _, ok, _ := d.Get("b"); ok {
		t.Fatal("LRU victim b survived the cap")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok, _ := d.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	if got := d.TotalBytes(); got > 250 {
		t.Fatalf("live bytes %d exceed cap", got)
	}
}

func TestDiskEvictionPersists(t *testing.T) {
	dir := t.TempDir()
	blob := bytes.Repeat([]byte("y"), 100)
	d1, err := OpenDisk(dir, DiskOptions{MaxBytes: 250})
	if err != nil {
		t.Fatal(err)
	}
	d1.Put("a", append([]byte("a"), blob...))
	d1.Put("b", append([]byte("b"), blob...))
	d1.Put("c", append([]byte("c"), blob...)) // evicts a
	// No Close: tombstones must already be durable.
	d2, err := OpenDisk(dir, DiskOptions{MaxBytes: 250})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok, _ := d2.Get("a"); ok {
		t.Fatal("evicted key resurrected after reopen")
	}
	if d2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d2.Len())
	}
}

func TestDiskContentDedup(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	shared := []byte("identical artifact bytes")
	d.Put("k1", shared)
	d.Put("k2", shared)
	if got := d.TotalBytes(); got != int64(len(shared)) {
		t.Fatalf("shared content stored twice: %d live bytes", got)
	}
	// Dropping one reference must not break the other.
	d.Put("k1", []byte("different now"))
	if got, ok, _ := d.Get("k2"); !ok || !bytes.Equal(got, shared) {
		t.Fatalf("k2 lost its blob after k1 moved on: %q ok=%v", got, ok)
	}
}

func TestStoreTelemetry(t *testing.T) {
	reg := telemetry.New()
	s := NewMemory(reg)
	s.Put("k", []byte("v"))
	s.Get("k")
	s.Get("absent")
	for name, want := range map[string]int64{
		"store_puts_total":   1,
		"store_hits_total":   1,
		"store_misses_total": 1,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestDiskConcurrentAccess(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			var err error
			for i := 0; i < 30 && err == nil; i++ {
				key := fmt.Sprintf("k%d", i%5)
				if w%2 == 0 {
					err = d.Put(key, []byte(key))
				} else {
					_, _, err = d.Get(key)
				}
			}
			done <- err
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestDiskOpenCompactsDeadHeavyIndex: a store abandoned without Close
// leaves superseded puts and eviction tombstones in the manifest; once
// dead lines outnumber live entries, reopening rewrites the index
// compactly — with every surviving key's blob recalled bit-identically.
func TestDiskOpenCompactsDeadHeavyIndex(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, DiskOptions{MaxBytes: 80})
	if err != nil {
		t.Fatal(err)
	}
	// Churn: overwrites append superseded lines, the byte cap appends
	// eviction tombstones.
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("k%d", i)
			blob := bytes.Repeat([]byte{byte('a' + i)}, 16+round)
			if err := d1.Put(key, blob); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := map[string][]byte{}
	for _, k := range d1.Keys() {
		b, ok, err := d1.Get(k)
		if err != nil || !ok {
			t.Fatalf("Get(%s) = ok=%v err=%v", k, ok, err)
		}
		want[k] = b
	}
	// Deliberately no Close: the manifest keeps all 40 put lines plus
	// tombstones for the handful of live keys.
	raw, err := os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(raw, []byte("\n")); lines <= 2*len(want) {
		t.Fatalf("churn produced only %d manifest lines for %d live keys", lines, len(want))
	}

	reg := telemetry.New()
	d2, err := OpenDisk(dir, DiskOptions{MaxBytes: 80, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if n := reg.Counter("store_compactions_total").Value(); n != 1 {
		t.Fatalf("store_compactions_total = %d, want 1", n)
	}
	raw, err = os.ReadFile(filepath.Join(dir, "index.log"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(raw, []byte("\n")); lines != len(want) {
		t.Fatalf("compacted manifest has %d lines, want %d (one per live key)", lines, len(want))
	}
	if d2.Len() != len(want) {
		t.Fatalf("reopen lost entries: %d live, want %d", d2.Len(), len(want))
	}
	for k, b := range want {
		got, ok, err := d2.Get(k)
		if err != nil || !ok || !bytes.Equal(got, b) {
			t.Fatalf("after compaction Get(%s) = %q ok=%v err=%v, want %q", k, got, ok, err, b)
		}
	}
	// A clean store compacted on Close must NOT trigger the open-time
	// rewrite again.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := telemetry.New()
	d3, err := OpenDisk(dir, DiskOptions{MaxBytes: 80, Metrics: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if n := reg2.Counter("store_compactions_total").Value(); n != 0 {
		t.Fatalf("compact manifest recompacted at open (count %d)", n)
	}
}
