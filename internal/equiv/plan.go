package equiv

import (
	mathbits "math/bits"

	"flowery/internal/sim"
)

// PlanSpec tunes pilot selection.
type PlanSpec struct {
	// PilotsPerClass is the average pilot budget per live class: the
	// plan spends PilotsPerClass × (live classes) injections in total,
	// allocated across strata in proportion to class weight rather than
	// uniformly. Heavy classes (many dynamic sites) become their own
	// strata with several pilots; the long tail of light classes is
	// merged into one weight-sampled stratum, so the budget measures
	// where the population mass is instead of where the class count is.
	PilotsPerClass int
	// Seed drives pilot site/bit choices.
	Seed int64
	// Masked, when non-nil, maps a class's defining static site to its
	// statically proven-masked bit-choice bitmap (see internal/bitmask:
	// set bits are choices whose injection is benign by construction).
	// Proven-masked choices across all live classes pool into one exact
	// zero-pilot stratum, pilots sweep only the remaining live choices,
	// and the pilot budget scales down by the live-choice fraction —
	// the masking analysis's injection savings. Nil reproduces the
	// PR 3 plan exactly.
	Masked func(static int32, width uint8) uint64
}

const (
	// headShare is the proportional-allocation pilot share above which a
	// class is estimated on its own rather than through the merged tail.
	headShare = 2.0
	// maxStratumPilots caps one stratum's pilots. Dominant classes take
	// pilot counts well past the 64-bit alphabet (the sweep then covers
	// each bit several times over distinct sites); the cap only stops a
	// single class from swallowing an extreme budget whole.
	maxStratumPilots = 256
)

// Stratum is one extrapolation stratum of a pruned campaign: a heavy
// class, the merged tail of light classes, or the merged dead
// population, with the pilot faults that represent it.
type Stratum struct {
	// Class indexes Partition.Classes; -1 marks the merged strata (tail,
	// masked, and dead).
	Class int
	// Sites is the stratum's site count (population weight numerator
	// before bit-level masking).
	Sites int64
	// Choices is the number of (site, bit-choice) pairs the stratum
	// stands for, out of 64 × Population: stratum weights derive from
	// it, which is what lets masked plans split one class's 64-choice
	// alphabet between a live stratum and the pooled masked stratum.
	// Plans built without masks set Choices = 64 × Sites.
	Choices int64
	// Exact marks strata whose outcome is known without injection
	// (dead defs and proven-masked choices are benign).
	Exact bool
	// Masked marks the pooled stratum of statically proven-masked bit
	// choices (always Exact).
	Masked bool
	// Pilots are the faults to actually inject.
	Pilots []sim.Fault
}

// Plan is the pilot schedule of a pruned campaign.
type Plan struct {
	// Population is the injectable site count the strata weights are
	// relative to.
	Population int64
	// Strata lists one stratum per heavy class in partition order, then
	// at most one merged tail stratum and one exact dead stratum.
	Strata []Stratum
}

// PilotRuns is the number of injections the plan executes.
func (p Plan) PilotRuns() int {
	n := 0
	for i := range p.Strata {
		n += len(p.Strata[i].Pilots)
	}
	return n
}

// BuildPlan schedules pilots for a partition.
//
// Every pilot's (site, bit) is marginally uniform over its stratum's
// site population × [0, 64) — the same marginal the full campaign's
// faultForRun uses — so extrapolated statistics estimate the same fault
// population. Within that constraint the plan buys variance down two
// ways: heavy classes sweep bits systematically (evenly spaced from a
// random offset, so the step structure of bit liveness is covered
// instead of resampled), and light classes share one stratum sampled in
// proportion to class size, which spends pilots on population mass
// rather than one per class.
func BuildPlan(part Partition, spec PlanSpec) Plan {
	k := spec.PilotsPerClass
	if k < 1 {
		k = 1
	}
	if spec.Masked != nil {
		return buildMaskedPlan(part, spec, k)
	}
	plan := Plan{Population: part.Population}

	var liveSites, deadSites int64
	live := 0
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead {
			deadSites += cl.Size
			continue
		}
		live++
		liveSites += cl.Size
	}
	budget := k * live

	// Heavy classes: own stratum, weight-proportional pilot count.
	// Sites are picked evenly spaced over the stratified stream sample
	// (so pilots cover the class's execution timeline, not one corner of
	// it); bits are a systematic sweep, shuffled so bit position does
	// not correlate with stream position.
	var tail []int
	var tailSites int64
	spent := 0
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead {
			continue
		}
		share := float64(budget) * float64(cl.Size) / float64(liveSites)
		if share < headShare || len(cl.Sample) == 0 {
			tail = append(tail, ci)
			tailSites += cl.Size
			continue
		}
		n := int(share + 0.5)
		if n > maxStratumPilots {
			n = maxStratumPilots
		}
		rng := splitmix64(uint64(spec.Seed)^splitmix64(uint64(ci))) | 1
		m := len(cl.Sample)
		rng = splitmix64(rng)
		start := int(rng % uint64(m))
		rng = splitmix64(rng)
		offset := int(rng % 64)
		bits := make([]int, n)
		for i := range bits {
			bits[i] = (offset + i*64/n) % 64
		}
		for i := n - 1; i > 0; i-- {
			rng = splitmix64(rng)
			j := int(rng % uint64(i+1))
			bits[i], bits[j] = bits[j], bits[i]
		}
		pilots := make([]sim.Fault, n)
		for i := 0; i < n; i++ {
			idx := (start + i) % m
			if n <= m {
				idx = (start + i*m/n) % m
			}
			pilots[i] = sim.Fault{TargetIndex: cl.Sample[idx], Bit: bits[i]}
		}
		spent += n
		plan.Strata = append(plan.Strata, Stratum{Class: ci, Sites: cl.Size, Choices: 64 * cl.Size, Pilots: pilots})
	}

	// Tail: whatever budget the heavy classes left, at least one pilot.
	// Sites are drawn uniformly over the tail population (class chosen
	// by size, then a uniform reservoir entry), bits uniformly.
	if tailSites > 0 {
		m := budget - spent
		if m < 1 {
			m = 1
		}
		rng := splitmix64(uint64(spec.Seed)^splitmix64(0x9e3779b97f4a7c15)) | 1
		pilots := make([]sim.Fault, m)
		for i := 0; i < m; i++ {
			rng = splitmix64(rng)
			target := rng % uint64(tailSites)
			var cl *Class
			for _, ci := range tail {
				c := &part.Classes[ci]
				if target < uint64(c.Size) {
					cl = c
					break
				}
				target -= uint64(c.Size)
			}
			rng = splitmix64(rng)
			site := cl.Sample[rng%uint64(len(cl.Sample))]
			rng = splitmix64(rng)
			pilots[i] = sim.Fault{TargetIndex: site, Bit: int(rng % 64)}
		}
		plan.Strata = append(plan.Strata, Stratum{Class: -1, Sites: tailSites, Choices: 64 * tailSites, Pilots: pilots})
	}

	if deadSites > 0 {
		plan.Strata = append(plan.Strata, Stratum{Class: -1, Sites: deadSites, Choices: 64 * deadSites, Exact: true})
	}
	return plan
}

// liveChoices lists the bit choices NOT proven masked, ascending.
func liveChoices(mask uint64) []int {
	out := make([]int, 0, 64-mathbits.OnesCount64(mask))
	for b := 0; b < 64; b++ {
		if mask&(1<<uint(b)) == 0 {
			out = append(out, b)
		}
	}
	return out
}

// buildMaskedPlan is BuildPlan composed with per-class masked-choice
// verdicts. It mirrors the unmasked plan's structure — heavy classes
// get their own systematically swept strata, light classes merge into
// a weight-sampled tail — but the measure everything is allocated and
// weighted by is live (site, choice) pairs instead of sites: pilots
// never land on proven-masked choices, masked choices accumulate into
// one exact benign stratum, and the total pilot budget shrinks by the
// masked fraction of the live population. With an all-zero mask the
// plan degenerates to the unmasked one (modulo identical weights
// expressed in choices).
func buildMaskedPlan(part Partition, spec PlanSpec, k int) Plan {
	plan := Plan{Population: part.Population}

	masks := make([]uint64, len(part.Classes))
	var deadSites, liveSites int64
	var livePairs, maskedPairs, maskedSites int64
	live := 0
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead {
			deadSites += cl.Size
			continue
		}
		m := spec.Masked(cl.Static, cl.Width)
		masks[ci] = m
		mc := int64(mathbits.OnesCount64(m))
		live++
		liveSites += cl.Size
		livePairs += cl.Size * (64 - mc)
		maskedPairs += cl.Size * mc
		if mc > 0 {
			maskedSites += cl.Size
		}
	}

	// The masked pool needs no pilots, and removing its choices also
	// shrinks every sampled stratum's weight by its live fraction: a
	// stratum contributes weight²·variance/pilots to the estimator
	// variance, so the plan holds the unmasked plan's precision with
	// only ρ² of its budget, where ρ = livePairs/(64·liveSites) is the
	// live-choice fraction of the live population (allocation below
	// stays proportional to live-pair mass, so each stratum's pilot
	// count scales by ~ρ² too). This quadratic scaling is where the
	// extra injection reduction over site-level pruning comes from.
	budget := 0
	if liveSites > 0 && livePairs > 0 {
		rho := float64(livePairs) / float64(64*liveSites)
		budget = int(float64(k*live)*rho*rho + 0.5)
		if budget < 1 {
			budget = 1
		}
	}

	var tail []int
	var tailSites, tailPairs int64
	spent := 0
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead {
			continue
		}
		lc := liveChoices(masks[ci])
		if len(lc) == 0 {
			continue // every choice proven masked: fully pooled
		}
		pairs := cl.Size * int64(len(lc))
		share := float64(budget) * float64(pairs) / float64(livePairs)
		if share < headShare || len(cl.Sample) == 0 {
			tail = append(tail, ci)
			tailSites += cl.Size
			tailPairs += pairs
			continue
		}
		n := int(share + 0.5)
		if n > maxStratumPilots {
			n = maxStratumPilots
		}
		rng := splitmix64(uint64(spec.Seed)^splitmix64(uint64(ci))) | 1
		m := len(cl.Sample)
		rng = splitmix64(rng)
		start := int(rng % uint64(m))
		rng = splitmix64(rng)
		offset := int(rng % uint64(len(lc)))
		bits := make([]int, n)
		for i := range bits {
			bits[i] = lc[(offset+i*len(lc)/n)%len(lc)]
		}
		for i := n - 1; i > 0; i-- {
			rng = splitmix64(rng)
			j := int(rng % uint64(i+1))
			bits[i], bits[j] = bits[j], bits[i]
		}
		pilots := make([]sim.Fault, n)
		for i := 0; i < n; i++ {
			idx := (start + i) % m
			if n <= m {
				idx = (start + i*m/n) % m
			}
			pilots[i] = sim.Fault{TargetIndex: cl.Sample[idx], Bit: bits[i]}
		}
		spent += n
		plan.Strata = append(plan.Strata, Stratum{Class: ci, Sites: cl.Size, Choices: pairs, Pilots: pilots})
	}

	// Tail: class drawn by live-choice mass, site uniformly from the
	// reservoir, bit uniformly over the class's live choices.
	if tailPairs > 0 {
		m := budget - spent
		if m < 1 {
			m = 1
		}
		rng := splitmix64(uint64(spec.Seed)^splitmix64(0x9e3779b97f4a7c15)) | 1
		pilots := make([]sim.Fault, m)
		for i := 0; i < m; i++ {
			rng = splitmix64(rng)
			target := rng % uint64(tailPairs)
			var cl *Class
			var lc []int
			for _, ci := range tail {
				c := &part.Classes[ci]
				lc = liveChoices(masks[ci])
				pairs := uint64(c.Size) * uint64(len(lc))
				if target < pairs {
					cl = c
					break
				}
				target -= pairs
			}
			rng = splitmix64(rng)
			site := cl.Sample[rng%uint64(len(cl.Sample))]
			rng = splitmix64(rng)
			pilots[i] = sim.Fault{TargetIndex: site, Bit: lc[rng%uint64(len(lc))]}
		}
		plan.Strata = append(plan.Strata, Stratum{Class: -1, Sites: tailSites, Choices: tailPairs, Pilots: pilots})
	}

	if maskedPairs > 0 {
		plan.Strata = append(plan.Strata, Stratum{Class: -1, Sites: maskedSites, Choices: maskedPairs, Exact: true, Masked: true})
	}
	if deadSites > 0 {
		plan.Strata = append(plan.Strata, Stratum{Class: -1, Sites: deadSites, Choices: 64 * deadSites, Exact: true})
	}
	return plan
}
