package equiv

import "flowery/internal/sim"

// PlanSpec tunes pilot selection.
type PlanSpec struct {
	// PilotsPerClass is the average pilot budget per live class: the
	// plan spends PilotsPerClass × (live classes) injections in total,
	// allocated across strata in proportion to class weight rather than
	// uniformly. Heavy classes (many dynamic sites) become their own
	// strata with several pilots; the long tail of light classes is
	// merged into one weight-sampled stratum, so the budget measures
	// where the population mass is instead of where the class count is.
	PilotsPerClass int
	// Seed drives pilot site/bit choices.
	Seed int64
}

const (
	// headShare is the proportional-allocation pilot share above which a
	// class is estimated on its own rather than through the merged tail.
	headShare = 2.0
	// maxStratumPilots caps one stratum's pilots. Dominant classes take
	// pilot counts well past the 64-bit alphabet (the sweep then covers
	// each bit several times over distinct sites); the cap only stops a
	// single class from swallowing an extreme budget whole.
	maxStratumPilots = 256
)

// Stratum is one extrapolation stratum of a pruned campaign: a heavy
// class, the merged tail of light classes, or the merged dead
// population, with the pilot faults that represent it.
type Stratum struct {
	// Class indexes Partition.Classes; -1 marks the merged strata (tail
	// and dead).
	Class int
	// Sites is the stratum's population weight numerator.
	Sites int64
	// Exact marks strata whose outcome is known without injection
	// (dead defs are benign).
	Exact bool
	// Pilots are the faults to actually inject.
	Pilots []sim.Fault
}

// Plan is the pilot schedule of a pruned campaign.
type Plan struct {
	// Population is the injectable site count the strata weights are
	// relative to.
	Population int64
	// Strata lists one stratum per heavy class in partition order, then
	// at most one merged tail stratum and one exact dead stratum.
	Strata []Stratum
}

// PilotRuns is the number of injections the plan executes.
func (p Plan) PilotRuns() int {
	n := 0
	for i := range p.Strata {
		n += len(p.Strata[i].Pilots)
	}
	return n
}

// BuildPlan schedules pilots for a partition.
//
// Every pilot's (site, bit) is marginally uniform over its stratum's
// site population × [0, 64) — the same marginal the full campaign's
// faultForRun uses — so extrapolated statistics estimate the same fault
// population. Within that constraint the plan buys variance down two
// ways: heavy classes sweep bits systematically (evenly spaced from a
// random offset, so the step structure of bit liveness is covered
// instead of resampled), and light classes share one stratum sampled in
// proportion to class size, which spends pilots on population mass
// rather than one per class.
func BuildPlan(part Partition, spec PlanSpec) Plan {
	k := spec.PilotsPerClass
	if k < 1 {
		k = 1
	}
	plan := Plan{Population: part.Population}

	var liveSites, deadSites int64
	live := 0
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead {
			deadSites += cl.Size
			continue
		}
		live++
		liveSites += cl.Size
	}
	budget := k * live

	// Heavy classes: own stratum, weight-proportional pilot count.
	// Sites are picked evenly spaced over the stratified stream sample
	// (so pilots cover the class's execution timeline, not one corner of
	// it); bits are a systematic sweep, shuffled so bit position does
	// not correlate with stream position.
	var tail []int
	var tailSites int64
	spent := 0
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead {
			continue
		}
		share := float64(budget) * float64(cl.Size) / float64(liveSites)
		if share < headShare || len(cl.Sample) == 0 {
			tail = append(tail, ci)
			tailSites += cl.Size
			continue
		}
		n := int(share + 0.5)
		if n > maxStratumPilots {
			n = maxStratumPilots
		}
		rng := splitmix64(uint64(spec.Seed)^splitmix64(uint64(ci))) | 1
		m := len(cl.Sample)
		rng = splitmix64(rng)
		start := int(rng % uint64(m))
		rng = splitmix64(rng)
		offset := int(rng % 64)
		bits := make([]int, n)
		for i := range bits {
			bits[i] = (offset + i*64/n) % 64
		}
		for i := n - 1; i > 0; i-- {
			rng = splitmix64(rng)
			j := int(rng % uint64(i+1))
			bits[i], bits[j] = bits[j], bits[i]
		}
		pilots := make([]sim.Fault, n)
		for i := 0; i < n; i++ {
			idx := (start + i) % m
			if n <= m {
				idx = (start + i*m/n) % m
			}
			pilots[i] = sim.Fault{TargetIndex: cl.Sample[idx], Bit: bits[i]}
		}
		spent += n
		plan.Strata = append(plan.Strata, Stratum{Class: ci, Sites: cl.Size, Pilots: pilots})
	}

	// Tail: whatever budget the heavy classes left, at least one pilot.
	// Sites are drawn uniformly over the tail population (class chosen
	// by size, then a uniform reservoir entry), bits uniformly.
	if tailSites > 0 {
		m := budget - spent
		if m < 1 {
			m = 1
		}
		rng := splitmix64(uint64(spec.Seed)^splitmix64(0x9e3779b97f4a7c15)) | 1
		pilots := make([]sim.Fault, m)
		for i := 0; i < m; i++ {
			rng = splitmix64(rng)
			target := rng % uint64(tailSites)
			var cl *Class
			for _, ci := range tail {
				c := &part.Classes[ci]
				if target < uint64(c.Size) {
					cl = c
					break
				}
				target -= uint64(c.Size)
			}
			rng = splitmix64(rng)
			site := cl.Sample[rng%uint64(len(cl.Sample))]
			rng = splitmix64(rng)
			pilots[i] = sim.Fault{TargetIndex: site, Bit: int(rng % 64)}
		}
		plan.Strata = append(plan.Strata, Stratum{Class: -1, Sites: tailSites, Pilots: pilots})
	}

	if deadSites > 0 {
		plan.Strata = append(plan.Strata, Stratum{Class: -1, Sites: deadSites, Exact: true})
	}
	return plan
}
