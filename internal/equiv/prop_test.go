// Soundness property test for the equivalence partition (the
// "expectation" documented on package equiv), over random progen
// programs on both engines:
//
//   - Dead classes are exact: injecting any bit into a sampled dead
//     site must be benign, always. This is the zero-pilot stratum
//     RunPruned extrapolates without injections, so it is held to a
//     strict standard.
//   - Live classes are near-homogeneous: sampled site pairs within one
//     class must produce the same campaign outcome under the same bit
//     flip for the overwhelming majority of pairs. Perfect agreement is
//     unattainable with single-pass first-level signatures — a loop
//     counter's final increment is benign where interior increments
//     change the trip count, and influence through untraced memory can
//     diverge — so a small, bounded disagreement budget is allowed and
//     the bound documents the measured quality of the partition
//     (DESIGN.md §10).
package equiv_test

import (
	"bytes"
	"fmt"
	"testing"

	"flowery/internal/backend"
	"flowery/internal/campaign"
	"flowery/internal/equiv"
	"flowery/internal/interp"
	"flowery/internal/machine"
	"flowery/internal/progen"
	"flowery/internal/sim"
)

const (
	propPrograms = 8 // non-trapping progen programs to check
	// maxPairDisagreement bounds the fraction of same-class site pairs
	// that may produce different outcomes in one program+engine run.
	// Measured disagreement with the default rules is ~2-6%; a sustained
	// regression past 15% means the signature has lost its power.
	maxPairDisagreement = 0.15
	propBitA            = 3
	propBitB            = 40
)

// outcomeOf reduces a faulty result to the campaign's outcome alphabet.
func outcomeOf(res sim.Result, golden []byte) string {
	switch res.Status {
	case sim.StatusDetected:
		return "detected"
	case sim.StatusTrap:
		return "due"
	}
	if res.Injected && !bytes.Equal(res.Output, golden) {
		return "sdc"
	}
	return "benign"
}

func checkPartitionSoundness(t *testing.T, name string, seed int64, fresh func() sim.Engine) (checked bool) {
	t.Helper()
	te, ok := fresh().(sim.TraceEngine)
	if !ok {
		t.Fatalf("%s: engine does not trace", name)
	}
	col := equiv.NewCollector(equiv.DefaultRules(seed))
	golden := te.RunTraced(sim.Options{}, col)
	if golden.Status != sim.StatusOK {
		return false // program traps fault-free; nothing to compare against
	}
	part := col.Close()
	if part.Population != golden.InjectableInstrs {
		t.Fatalf("%s seed %d: %d defs for %d injectable sites",
			name, seed, part.Population, golden.InjectableInstrs)
	}
	goldenOut := append([]byte(nil), golden.Output...)
	opts := sim.Options{MaxSteps: campaign.HangFactor*golden.DynInstrs + 100_000}

	eng := fresh()
	pairs, disagree := 0, 0
	for ci := range part.Classes {
		cl := &part.Classes[ci]
		if cl.Dead {
			// Exact stratum: every sampled dead site must be benign.
			for _, site := range cl.Sample {
				for _, bit := range []int{propBitA, propBitB} {
					res := eng.Run(sim.Fault{TargetIndex: site, Bit: bit}, opts)
					if got := outcomeOf(res, goldenOut); got != "benign" {
						t.Errorf("%s seed %d: dead site %d (static %d width %d) bit %d → %s, want benign",
							name, seed, site, cl.Static, cl.Width, bit, got)
					}
				}
			}
			continue
		}
		if len(cl.Sample) < 2 {
			continue
		}
		for _, bit := range []int{propBitA, propBitB} {
			var want string
			for i, site := range cl.Sample[:2] {
				res := eng.Run(sim.Fault{TargetIndex: site, Bit: bit}, opts)
				got := outcomeOf(res, goldenOut)
				if i == 0 {
					want = got
					continue
				}
				pairs++
				if got != want {
					disagree++
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatalf("%s seed %d: no multi-site live classes to check", name, seed)
	}
	if frac := float64(disagree) / float64(pairs); frac > maxPairDisagreement {
		t.Errorf("%s seed %d: %d of %d same-class pairs disagree (%.1f%% > %.0f%% budget)",
			name, seed, disagree, pairs, 100*frac, 100*maxPairDisagreement)
	}
	return true
}

func TestPartitionSoundnessProperty(t *testing.T) {
	want := propPrograms
	if testing.Short() {
		want /= 2
	}
	checked := 0
	for seed := int64(1); checked < want && seed < 100; seed++ {
		seed := seed
		m := progen.Generate(seed, progen.DefaultConfig())
		prog, err := backend.Lower(m)
		if err != nil {
			t.Fatal(err)
		}
		ok := false
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			okI := checkPartitionSoundness(t, "interp", seed, func() sim.Engine {
				return interp.New(m)
			})
			okM := checkPartitionSoundness(t, "machine", seed, func() sim.Engine {
				mc, err := machine.New(m, prog)
				if err != nil {
					t.Fatal(err)
				}
				return mc
			})
			if okI != okM {
				t.Fatalf("engines disagree on golden status for seed %d", seed)
			}
			ok = okI
		})
		if ok {
			checked++
		}
	}
	if checked < want {
		t.Fatalf("only %d of %d non-trapping programs found", checked, want)
	}
}
