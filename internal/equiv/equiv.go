// Package equiv is the fault-site equivalence pruning engine
// (DESIGN.md §10). It consumes the def-use stream of one golden run
// (sim.Tracer events emitted by a sim.TraceEngine) and partitions the
// injectable fault population into equivalence classes: sites at the
// same static instruction whose values have the same width, flow into
// the same static consumers through the same kinds of uses, and — where
// the concrete value gates behavior (compare operands, divisors, flags,
// narrow values) — carry the same value. Injecting a handful of pilot
// faults per class and extrapolating class outcomes by population
// weight reproduces full-campaign statistics at a fraction of the
// injections, in the spirit of FastFlip (arXiv:2403.13989) and BEC
// (arXiv:2401.05753).
//
// The partition is heuristic, not a proof: two sites in one class are
// *expected* to behave identically under the same bit flip, and the
// soundness property test (equiv_prop_test.go) checks that expectation
// empirically, but influence that flows through untraced memory can in
// principle diverge. The extrapolated *estimator* does not depend on
// within-class homogeneity for unbiasedness — pilots are drawn
// uniformly within each class — only its variance does. Defs with an
// empty use set are the exception: a value never read before its
// location dies cannot affect anything, so dead classes are exact,
// zero-pilot benign strata.
package equiv

import (
	"encoding/json"
	"fmt"

	"flowery/internal/sim"
)

// FNV-1a constants; class signatures are order-sensitive folds of the
// use stream.
const (
	sigOffset = 0xcbf29ce484222325
	sigPrime  = 0x100000001b3
)

// Rules tunes the partition.
type Rules struct {
	// MaxSample bounds the per-class stratified site sample pilots are
	// drawn from (rounded up to even: windows merge in pairs).
	MaxSample int
	// Seed drives site sampling.
	Seed int64
	// FoldKinds is a bitmask of sim.UseKind values that force a def's
	// concrete value into its class signature: uses through which the
	// value gates control flow or traps (compare operands, divisors),
	// where sites with different values can behave arbitrarily
	// differently under the same flip.
	FoldKinds uint16
	// FoldWidth folds the concrete value for defs at most this wide
	// (booleans, flags, bytes: narrow values are control-adjacent and
	// cheap to split on).
	FoldWidth uint8
}

// DefaultRules is the partition the campaign layer uses.
func DefaultRules(seed int64) Rules {
	return Rules{
		MaxSample: 8,
		Seed:      seed,
		FoldKinds: 1<<sim.UseCmp | 1<<sim.UseDiv | 1<<sim.UseBranch,
		FoldWidth: 8,
	}
}

// Class is one equivalence class of fault sites.
type Class struct {
	// Static is the defining static instruction.
	Static int32
	// Width is the destination width in bits.
	Width uint8
	// Sig is the folded def-use signature (0 for dead classes).
	Sig uint64
	// Dead marks classes whose values are never read before their
	// location dies: provably benign, injected zero times.
	Dead bool
	// Size is the number of member fault sites.
	Size int64
	// Uses totals the members' use counts (liveness telemetry).
	Uses int64
	// Sample is a stratified random sample of member sites (1-based
	// fault target indices), at most Rules.MaxSample of them: the
	// member stream is cut into equal windows (the span doubling
	// whenever the buffer fills) and one uniformly drawn member
	// represents each window, so the sample is uniform AND evenly
	// spread over the class's dynamic instance sequence. Entries are in
	// stream order.
	Sample []int64

	rng    uint64 // sampling PRNG state
	window int64  // current window span (instances per sample entry)
	inWin  int64  // instances seen in the open window
	cand   int64  // uniform candidate for the open window
}

// MarshalJSON renders a class summary with named fields (no raw
// internals), for BENCH_*.json and reports.
func (c Class) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Static int32   `json:"static"`
		Width  uint8   `json:"width"`
		Sig    string  `json:"sig"`
		Dead   bool    `json:"dead,omitempty"`
		Size   int64   `json:"size"`
		Uses   int64   `json:"uses"`
		Sample []int64 `json:"sample,omitempty"`
	}{c.Static, c.Width, fmt.Sprintf("%016x", c.Sig), c.Dead, c.Size, c.Uses, c.Sample})
}

// Partition is the classed fault population of one golden run.
type Partition struct {
	// Population is the injectable site count (== golden
	// InjectableInstrs; fault target indices range over [1,
	// Population]).
	Population int64
	// DeadSites is the number of sites in dead classes.
	DeadSites int64
	// Classes lists the classes in first-finalization order
	// (deterministic for a given engine and program).
	Classes []Class
}

// LiveClasses counts classes that need pilot injections.
func (p Partition) LiveClasses() int {
	n := 0
	for i := range p.Classes {
		if !p.Classes[i].Dead {
			n++
		}
	}
	return n
}

// openDef is a live definition in the collector's slab.
type openDef struct {
	site      int64 // 1-based fault target index
	value     uint64
	sig       uint64
	uses      int64
	refs      int32
	static    int32
	kinds     uint16 // bitmask of observed use kinds
	width     uint8
	sensitive bool
}

// classKey identifies a class during collection.
type classKey struct {
	static int32
	width  uint8
	dead   bool
	sig    uint64
}

// Collector implements sim.Tracer, streaming the def-use events of a
// golden run into a Partition. Memory is bounded by the number of
// *concurrently live* defs (open slab entries are recycled on Kill),
// not by the fault population.
type Collector struct {
	rules   Rules
	defs    []openDef
	free    []int32
	sites   int64
	dead    int64
	classes []Class
	index   map[classKey]int32
}

// NewCollector returns an empty collector.
func NewCollector(rules Rules) *Collector {
	if rules.MaxSample <= 0 {
		rules.MaxSample = DefaultRules(rules.Seed).MaxSample
	}
	if rules.MaxSample%2 == 1 {
		rules.MaxSample++
	}
	return &Collector{rules: rules, index: make(map[classKey]int32)}
}

// Def implements sim.Tracer. Defs are numbered in call order; def i
// corresponds to fault target index i+1 (the engine ordering contract
// documented on sim.Tracer).
func (c *Collector) Def(static int32, width uint8, value uint64, sensitive bool) int64 {
	c.sites++
	var idx int32
	if n := len(c.free); n > 0 {
		idx = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		c.defs = append(c.defs, openDef{})
		idx = int32(len(c.defs) - 1)
	}
	c.defs[idx] = openDef{
		site: c.sites, static: static, width: width,
		value: value, sensitive: sensitive, refs: 1, sig: sigOffset,
	}
	return int64(idx)
}

// Use implements sim.Tracer, folding (consumer, kind) into the def's
// order-sensitive signature.
func (c *Collector) Use(h int64, consumer int32, kind sim.UseKind) {
	if h < 0 {
		return
	}
	d := &c.defs[h]
	d.uses++
	d.kinds |= 1 << kind
	d.sig = (d.sig ^ splitmix64(uint64(uint32(consumer))<<8|uint64(kind))) * sigPrime
}

// Retain implements sim.Tracer.
func (c *Collector) Retain(h int64) {
	if h >= 0 {
		c.defs[h].refs++
	}
}

// Kill implements sim.Tracer; the last release classifies the def.
func (c *Collector) Kill(h int64) {
	if h < 0 {
		return
	}
	d := &c.defs[h]
	d.refs--
	if d.refs == 0 {
		c.classifyDef(d)
		c.free = append(c.free, int32(h))
	}
}

// classifyDef folds a finished def into its class.
func (c *Collector) classifyDef(d *openDef) {
	dead := d.uses == 0
	sig := d.sig
	switch {
	case dead:
		sig = 0
		c.dead++
	case d.sensitive || d.width <= c.rules.FoldWidth || d.kinds&c.rules.FoldKinds != 0:
		sig = (sig ^ splitmix64(d.value)) * sigPrime
	}
	key := classKey{static: d.static, width: d.width, dead: dead, sig: sig}
	ci, ok := c.index[key]
	if !ok {
		ci = int32(len(c.classes))
		c.classes = append(c.classes, Class{
			Static: d.static, Width: d.width, Sig: sig, Dead: dead,
			rng: splitmix64(uint64(c.rules.Seed) ^ splitmix64(uint64(ci)+0x632be59bd9b4e019)),
		})
		c.index[key] = ci
	}
	cl := &c.classes[ci]
	cl.Size++
	cl.Uses += d.uses
	cl.sample(d.site, c.rules.MaxSample)
}

// sample folds one member site into the class's stratified sample.
// Within the open window the candidate is reservoir-replaced with
// probability 1/t (one uniform draw per window); when the buffer hits
// max, adjacent windows merge — either representative survives with
// equal probability, staying uniform over the doubled span.
func (cl *Class) sample(site int64, max int) {
	if cl.window == 0 {
		cl.window = 1
	}
	cl.inWin++
	cl.rng = splitmix64(cl.rng)
	if cl.rng%uint64(cl.inWin) == 0 {
		cl.cand = site
	}
	if cl.inWin < cl.window {
		return
	}
	cl.Sample = append(cl.Sample, cl.cand)
	cl.inWin = 0
	if len(cl.Sample) < max {
		return
	}
	half := len(cl.Sample) / 2
	for i := 0; i < half; i++ {
		cl.rng = splitmix64(cl.rng)
		j := 2 * i
		if cl.rng&1 == 1 {
			j++
		}
		cl.Sample[i] = cl.Sample[j]
	}
	cl.Sample = cl.Sample[:half]
	cl.window *= 2
}

// Sites returns the number of defs seen so far.
func (c *Collector) Sites() int64 { return c.sites }

// Close finalizes defs still live at program end (machine registers
// that were never overwritten) and returns the partition. The collector
// must not be reused afterwards.
func (c *Collector) Close() Partition {
	for i := range c.defs {
		if c.defs[i].refs > 0 {
			c.defs[i].refs = 0
			c.classifyDef(&c.defs[i])
		}
	}
	// Flush each class's open sampling window so the stream tail is
	// represented too (its entry spans fewer instances than the rest — a
	// ≤ 1/MaxSample overweight, documented as acceptable).
	for i := range c.classes {
		cl := &c.classes[i]
		if cl.inWin > 0 {
			cl.Sample = append(cl.Sample, cl.cand)
			cl.inWin = 0
		}
	}
	return Partition{Population: c.sites, DeadSites: c.dead, Classes: c.classes}
}

// splitmix64 is the standard 64-bit mixer (same generator the campaign
// layer derives faults from).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
