package equiv

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"flowery/internal/sim"
)

// replay feeds a fixed def-use stream: n defs at the same static
// instruction, each used per the uses list, then killed.
func replay(c *Collector, static int32, width uint8, value uint64, uses []sim.UseKind) {
	h := c.Def(static, width, value, false)
	for _, k := range uses {
		c.Use(h, static+100, k)
	}
	c.Kill(h)
}

func TestCollectorMergesIdenticalDefs(t *testing.T) {
	c := NewCollector(DefaultRules(1))
	for i := 0; i < 20; i++ {
		replay(c, 7, 64, uint64(1000+i), []sim.UseKind{sim.UseArith, sim.UseStoreVal})
	}
	p := c.Close()
	if p.Population != 20 {
		t.Fatalf("population = %d, want 20", p.Population)
	}
	if len(p.Classes) != 1 {
		t.Fatalf("got %d classes, want 1: %+v", len(p.Classes), p.Classes)
	}
	cl := p.Classes[0]
	if cl.Size != 20 || cl.Dead || cl.Static != 7 || cl.Width != 64 {
		t.Fatalf("bad class: %+v", cl)
	}
	if cl.Uses != 40 {
		t.Fatalf("uses = %d, want 40", cl.Uses)
	}
	// The stratified sample keeps between MaxSample/2 and MaxSample
	// window representatives, depending on where the stream ends.
	max := DefaultRules(1).MaxSample
	if len(cl.Sample) < max/2 || len(cl.Sample) > max {
		t.Fatalf("sample size = %d, want in [%d, %d]", len(cl.Sample), max/2, max)
	}
	seen := map[int64]bool{}
	for _, s := range cl.Sample {
		if s < 1 || s > 20 || seen[s] {
			t.Fatalf("bad sample entry %d in %v", s, cl.Sample)
		}
		seen[s] = true
	}
}

func TestCollectorSplitsOnSignature(t *testing.T) {
	c := NewCollector(DefaultRules(1))
	// Same static and width, different consumers → different classes.
	h := c.Def(3, 64, 5, false)
	c.Use(h, 50, sim.UseArith)
	c.Kill(h)
	h = c.Def(3, 64, 5, false)
	c.Use(h, 51, sim.UseArith)
	c.Kill(h)
	// Different use order → different class (signature is a sequence
	// fold, not a set).
	h = c.Def(3, 64, 5, false)
	c.Use(h, 51, sim.UseArith)
	c.Use(h, 50, sim.UseArith)
	c.Kill(h)
	h = c.Def(3, 64, 5, false)
	c.Use(h, 50, sim.UseArith)
	c.Use(h, 51, sim.UseArith)
	c.Kill(h)
	p := c.Close()
	if len(p.Classes) != 4 {
		t.Fatalf("got %d classes, want 4: %+v", len(p.Classes), p.Classes)
	}
}

func TestCollectorDeadDefs(t *testing.T) {
	c := NewCollector(DefaultRules(1))
	// Values written and overwritten without a read: dead, merged across
	// distinct concrete values.
	replay(c, 9, 64, 111, nil)
	replay(c, 9, 64, 222, nil)
	replay(c, 4, 32, 333, nil) // different static: separate dead class
	replay(c, 9, 64, 1, []sim.UseKind{sim.UseArith})
	p := c.Close()
	if p.DeadSites != 3 {
		t.Fatalf("dead sites = %d, want 3", p.DeadSites)
	}
	deadClasses := 0
	for _, cl := range p.Classes {
		if cl.Dead {
			deadClasses++
			if cl.Sig != 0 {
				t.Fatalf("dead class has non-zero sig: %+v", cl)
			}
		}
	}
	if deadClasses != 2 {
		t.Fatalf("dead classes = %d, want 2", deadClasses)
	}
	if p.LiveClasses() != 1 {
		t.Fatalf("live classes = %d, want 1", p.LiveClasses())
	}
}

func TestCollectorValueFolding(t *testing.T) {
	r := DefaultRules(1)
	// A compare operand's concrete value partitions classes...
	c := NewCollector(r)
	replay(c, 2, 64, 10, []sim.UseKind{sim.UseCmp})
	replay(c, 2, 64, 11, []sim.UseKind{sim.UseCmp})
	if p := c.Close(); len(p.Classes) != 2 {
		t.Fatalf("cmp operand values not folded: %+v", p.Classes)
	}
	// ...as does any narrow def's...
	c = NewCollector(r)
	replay(c, 2, 8, 0, []sim.UseKind{sim.UseArith})
	replay(c, 2, 8, 1, []sim.UseKind{sim.UseArith})
	if p := c.Close(); len(p.Classes) != 2 {
		t.Fatalf("narrow values not folded: %+v", p.Classes)
	}
	// ...and a sensitive def's; wide pure-dataflow values are not.
	c = NewCollector(r)
	h := c.Def(2, 64, 10, true)
	c.Use(h, 50, sim.UseArith)
	c.Kill(h)
	h = c.Def(2, 64, 11, true)
	c.Use(h, 50, sim.UseArith)
	c.Kill(h)
	if p := c.Close(); len(p.Classes) != 2 {
		t.Fatalf("sensitive values not folded: %+v", p.Classes)
	}
	c = NewCollector(r)
	replay(c, 2, 64, 10, []sim.UseKind{sim.UseArith})
	replay(c, 2, 64, 11, []sim.UseKind{sim.UseArith})
	if p := c.Close(); len(p.Classes) != 1 {
		t.Fatalf("wide dataflow values spuriously folded: %+v", p.Classes)
	}
}

func TestCollectorRetainRefcount(t *testing.T) {
	c := NewCollector(DefaultRules(1))
	h := c.Def(1, 64, 5, false)
	c.Retain(h)
	c.Kill(h)
	// Still referenced: not classified yet, and its slab slot must not be
	// recycled into the next def.
	h2 := c.Def(1, 64, 6, false)
	if h2 == h {
		t.Fatal("retained def's slot recycled")
	}
	c.Use(h, 70, sim.UseCallArg)
	c.Kill(h)
	c.Kill(h2)
	p := c.Close()
	if p.Population != 2 || p.DeadSites != 1 {
		t.Fatalf("population %d dead %d, want 2/1", p.Population, p.DeadSites)
	}
}

func TestCollectorCloseFinalizesLiveDefs(t *testing.T) {
	c := NewCollector(DefaultRules(1))
	h := c.Def(1, 64, 5, false)
	c.Use(h, 70, sim.UseArith)
	// Never killed (a register still live at program exit).
	p := c.Close()
	if p.Population != 1 || len(p.Classes) != 1 || p.Classes[0].Dead {
		t.Fatalf("live-at-exit def mishandled: %+v", p)
	}
}

func TestCollectorDeterminism(t *testing.T) {
	build := func() Partition {
		c := NewCollector(DefaultRules(42))
		for i := 0; i < 100; i++ {
			replay(c, int32(i%5), 64, uint64(i%3), []sim.UseKind{sim.UseArith})
			replay(c, int32(i%7), 8, uint64(i%2), []sim.UseKind{sim.UseCmp})
			replay(c, 30, 32, uint64(i), nil)
		}
		return c.Close()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical streams produced different partitions")
	}
}

func TestBuildPlan(t *testing.T) {
	c := NewCollector(DefaultRules(9))
	for i := 0; i < 30; i++ {
		replay(c, 1, 64, uint64(i), []sim.UseKind{sim.UseArith})
	}
	for i := 0; i < 10; i++ {
		replay(c, 2, 64, uint64(i), nil)
	}
	replay(c, 3, 64, 0, []sim.UseKind{sim.UseStoreVal})
	part := c.Close()

	plan := BuildPlan(part, PlanSpec{PilotsPerClass: 3, Seed: 9})
	if plan.Population != 41 {
		t.Fatalf("population = %d, want 41", plan.Population)
	}
	// Budget 3×2 live classes = 6 pilots. The 30-site class earns a
	// weight-proportional share ≥ 2, so it is its own head stratum with
	// the whole budget; the 1-site class falls into the merged tail with
	// the 1-pilot floor; the 10 dead sites form the exact stratum.
	if len(plan.Strata) != 3 {
		t.Fatalf("got %d strata: %+v", len(plan.Strata), plan.Strata)
	}
	if plan.PilotRuns() != 7 {
		t.Fatalf("pilot runs = %d, want 7", plan.PilotRuns())
	}
	head, tail, dead := plan.Strata[0], plan.Strata[1], plan.Strata[2]
	if head.Class != 0 || head.Sites != 30 || len(head.Pilots) != 6 {
		t.Fatalf("bad head stratum: %+v", head)
	}
	if tail.Class != -1 || tail.Sites != 1 || len(tail.Pilots) != 1 || tail.Exact {
		t.Fatalf("bad tail stratum: %+v", tail)
	}
	if !dead.Exact || dead.Class != -1 || dead.Sites != 10 || len(dead.Pilots) != 0 {
		t.Fatalf("bad dead stratum: %+v", dead)
	}
	// Head pilots stay inside their class's sites under a systematic bit
	// sweep (distinct bits); the tail pilot hits the only tail site.
	seenBits := map[int]bool{}
	for _, f := range head.Pilots {
		if f.TargetIndex < 1 || f.TargetIndex > 30 || f.Bit < 0 || f.Bit > 63 {
			t.Fatalf("head pilot out of range: %+v", f)
		}
		if seenBits[f.Bit] {
			t.Fatalf("systematic sweep repeated a bit: %+v", head.Pilots)
		}
		seenBits[f.Bit] = true
	}
	if tail.Pilots[0].TargetIndex != 41 {
		t.Fatalf("tail pilot hit site %d, want 41", tail.Pilots[0].TargetIndex)
	}

	// An oversized budget keeps each head stratum at or under the cap and
	// never spends more than budget + the tail's one-pilot floor overall.
	big := BuildPlan(part, PlanSpec{PilotsPerClass: 100, Seed: 9})
	for _, s := range big.Strata {
		if s.Class >= 0 && len(s.Pilots) > 256 {
			t.Fatalf("stratum pilots exceed cap: %d", len(s.Pilots))
		}
	}
	if got, max := big.PilotRuns(), 100*2+1; got > max {
		t.Fatalf("pilot runs = %d, want <= %d", got, max)
	}
}

func TestClassJSON(t *testing.T) {
	cl := Class{Static: 4, Width: 8, Sig: 0xabcd, Size: 3, Uses: 6, Sample: []int64{1, 2, 3}}
	b, err := json.Marshal(cl)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	for _, key := range []string{`"static":4`, `"width":8`, `"sig":"000000000000abcd"`, `"size":3`, `"uses":6`} {
		if !strings.Contains(s, key) {
			t.Fatalf("class JSON %s missing %s", s, key)
		}
	}
	if strings.Contains(s, "rng") {
		t.Fatalf("class JSON leaks internals: %s", s)
	}
}
