// Command flowery is the Swiss-army tool for the protection pipeline:
//
//	flowery list                          # available benchmarks
//	flowery ir bfs                        # print a benchmark's IR
//	flowery protect -level 0.7 bfs        # duplicate (+ -flowery) and print IR
//	flowery asm -protect bfs              # print lowered assembly with origins
//	flowery run -layer asm bfs            # golden run
//	flowery inject -runs 2000 -layer asm -level 1 -flowery bfs
//	                                      # fault-injection campaign
//
// Program arguments name a built-in benchmark or a file containing
// textual IR (as printed by `flowery ir`).
package main

import (
	"flag"
	"fmt"
	"os"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/opt"
	"flowery/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "list":
		for _, b := range bench.All() {
			fmt.Printf("%-14s %-9s %s\n", b.Name, b.Suite, b.Domain)
		}
	case "ir":
		err = cmdIR(args)
	case "opt":
		err = cmdOpt(args)
	case "protect":
		err = cmdProtect(args)
	case "asm":
		err = cmdAsm(args)
	case "run":
		err = cmdRun(args)
	case "inject":
		err = cmdInject(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowery:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flowery {list|ir|opt|protect|asm|run|inject} [flags] <benchmark|file.ir>")
	os.Exit(2)
}

// cmdOpt runs the mid-end optimizer and prints the result. Running it
// before `protect` is the correct pipeline order; running it after
// nullifies the protection (see internal/opt).
func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("opt: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	changed := opt.Run(m, opt.Standard())
	if err := m.Verify(); err != nil {
		return fmt.Errorf("optimizer produced invalid IR: %w", err)
	}
	fmt.Fprintf(os.Stderr, "opt: %d pass applications changed the module\n", changed)
	fmt.Print(m.String())
	return nil
}

// loadModule resolves a benchmark name or IR file path.
func loadModule(name string) (*ir.Module, error) {
	if bm, ok := bench.ByName(name); ok {
		return bm.Build(), nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a benchmark nor a readable file", name)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("verify %s: %w", name, err)
	}
	return m, nil
}

// protectFlags adds the shared protection flags to fs.
type protection struct {
	level   *float64
	flowery *bool
	samples *int
	seed    *int64
}

func addProtection(fs *flag.FlagSet) protection {
	return protection{
		level:   fs.Float64("level", 1.0, "protection level in (0,1]"),
		flowery: fs.Bool("flowery", false, "apply the Flowery patches after duplication"),
		samples: fs.Int("samples", 800, "profiling injections for selective protection"),
		seed:    fs.Int64("seed", 2023, "random seed"),
	}
}

// apply protects m according to the flags.
func (p protection) apply(m *ir.Module) error {
	if *p.level >= 1 {
		if err := dup.ApplyFull(m); err != nil {
			return err
		}
	} else {
		profile, err := dup.BuildProfile(m, dup.ProfileOptions{Samples: *p.samples, Seed: *p.seed})
		if err != nil {
			return err
		}
		if err := dup.Apply(m, dup.Select(profile, dup.Level(*p.level))); err != nil {
			return err
		}
	}
	if *p.flowery {
		st, err := flowery.Apply(m, flowery.All())
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "flowery: hoisted %d stores, patched %d branches, isolated %d compares in %v\n",
			st.StoresHoisted, st.BranchesPatched, st.CmpsIsolated, st.Elapsed)
	}
	return nil
}

func cmdIR(args []string) error {
	fs := flag.NewFlagSet("ir", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("ir: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(m.String())
	return nil
}

func cmdProtect(args []string) error {
	fs := flag.NewFlagSet("protect", flag.ExitOnError)
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("protect: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	if err := p.apply(m); err != nil {
		return err
	}
	fmt.Print(m.String())
	return nil
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	prot := fs.Bool("protect", false, "duplicate before lowering")
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("asm: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	if *prot {
		if err := p.apply(m); err != nil {
			return err
		}
	}
	prog, err := backend.Lower(m)
	if err != nil {
		return err
	}
	fmt.Print(prog.String())
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	layer := fs.String("layer", "asm", "execution layer: ir|asm")
	prot := fs.Bool("protect", false, "duplicate before running")
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	if *prot {
		if err := p.apply(m); err != nil {
			return err
		}
	}
	var res sim.Result
	switch *layer {
	case "ir":
		res = interp.New(m).Run(sim.Fault{}, sim.Options{})
	case "asm":
		prog, err := backend.Lower(m)
		if err != nil {
			return err
		}
		mc, err := machine.New(m, prog)
		if err != nil {
			return err
		}
		res = mc.Run(sim.Fault{}, sim.Options{})
	default:
		return fmt.Errorf("run: bad layer %q", *layer)
	}
	os.Stdout.Write(res.Output)
	fmt.Fprintf(os.Stderr, "status=%v trap=%v ret=%d dynamic=%d injectable=%d\n",
		res.Status, res.Trap, res.RetVal, res.DynInstrs, res.InjectableInstrs)
	return nil
}

func cmdInject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	layer := fs.String("layer", "asm", "execution layer: ir|asm")
	runs := fs.Int("runs", 1000, "number of fault injections")
	prot := fs.Bool("protect", false, "duplicate before injecting")
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inject: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	if *prot {
		if err := p.apply(m); err != nil {
			return err
		}
	}

	var factory campaign.EngineFactory
	switch *layer {
	case "ir":
		factory = func() (sim.Engine, error) { return interp.New(m), nil }
	case "asm":
		prog, err := backend.Lower(m)
		if err != nil {
			return err
		}
		factory = func() (sim.Engine, error) { return machine.New(m, prog) }
	default:
		return fmt.Errorf("inject: bad layer %q", *layer)
	}
	st, err := campaign.Run(factory, campaign.Spec{Runs: *runs, Seed: *p.seed})
	if err != nil {
		return err
	}
	fmt.Printf("runs=%d golden_dyn=%d injectable=%d\n", st.Runs, st.GoldenDyn, st.GoldenInjectable)
	for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
		fmt.Printf("%-9s %6d  %6.2f%%\n", o, st.Counts[o], st.Rate(o)*100)
	}
	anySDC := false
	for _, c := range st.SDCByOrigin {
		if c > 0 {
			anySDC = true
		}
	}
	if anySDC && *layer == "asm" {
		fmt.Println("SDCs by origin:")
		for o := 0; o < asm.NumOrigins; o++ {
			if st.SDCByOrigin[o] > 0 {
				fmt.Printf("  %-9s %6d\n", asm.Origin(o), st.SDCByOrigin[o])
			}
		}
	}
	return nil
}
