// Command flowery is the Swiss-army tool for the protection pipeline:
//
//	flowery list                          # available benchmarks
//	flowery ir bfs                        # print a benchmark's IR
//	flowery protect -level 0.7 bfs        # duplicate (+ -flowery) and print IR
//	flowery asm -protect bfs              # print lowered assembly with origins
//	flowery run -layer asm bfs            # golden run
//	flowery inject -runs 2000 -layer asm -level 1 -flowery bfs
//	                                      # fault-injection campaign
//
// Program arguments name a built-in benchmark or a file containing
// textual IR (as printed by `flowery ir`).
//
// The protect/asm/run/inject subcommands derive their modules through
// the same artifact pipeline as cmd/experiments (internal/pipeline), so
// the CLI exercises exactly the derivation chains the evaluation
// measures.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"flowery/internal/api"
	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/flowery"
	"flowery/internal/ir"
	"flowery/internal/opt"
	"flowery/internal/pipeline"
	"flowery/internal/reclog"
	"flowery/internal/shard"
	"flowery/internal/sim"
	"flowery/internal/telemetry"
	"flowery/internal/version"
)

// telemetryReg and telemetryRoot are the run's registry and root trace
// span when the global -metrics/-trace flags ask for telemetry; every
// subcommand's pipeline reports into them (see protection.pipelineConfig).
var (
	telemetryReg  *telemetry.Registry
	telemetryRoot *telemetry.Span
)

func main() {
	// When spawned as a shard worker (FLOWERY_SHARD_WORKER set by the
	// coordinator), serve the worker protocol instead of parsing flags.
	shard.MaybeServeWorker()

	// Global flags precede the subcommand: flowery -cpuprofile=cpu.out inject ...
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := flag.String("metrics", "", "write the telemetry run report to this file (JSON, or Prometheus text when the path ends in .prom)")
	traceOut := flag.String("trace", "", "write the telemetry span tree to this file (JSON)")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Usage = func() { usage() }
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Line("flowery"))
		return
	}
	if flag.NArg() < 1 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	if *metricsOut != "" || *traceOut != "" {
		telemetryReg = telemetry.New()
		telemetryRoot = telemetryReg.StartSpan(nil, "study")
		telemetryRoot.SetAttr("cmd", cmd)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "flowery:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "flowery:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "flowery:", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "flowery:", err)
				os.Exit(1)
			}
		}()
	}

	var err error
	switch cmd {
	case "list":
		for _, b := range bench.All() {
			fmt.Printf("%-14s %-9s %s\n", b.Name, b.Suite, b.Domain)
		}
	case "ir":
		err = cmdIR(args)
	case "opt":
		err = cmdOpt(args)
	case "protect":
		err = cmdProtect(args)
	case "asm":
		err = cmdAsm(args)
	case "run":
		err = cmdRun(args)
	case "inject":
		err = cmdInject(args)
	case "remote":
		err = cmdRemote(args)
	case "shard-worker":
		// Explicit worker mode (the env-var path above covers spawned
		// workers; this argv form keeps the mode visible in ps output).
		err = cmdShardWorker(args)
	default:
		usage()
	}
	if telemetryReg != nil {
		telemetryRoot.End()
		// A failed subcommand still renders what it collected; its error
		// stays the one reported.
		if werr := telemetry.WriteFiles(telemetryReg, *metricsOut, *traceOut); err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flowery:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flowery [-cpuprofile f] [-memprofile f] {list|ir|opt|protect|asm|run|inject|remote|shard-worker} [flags] <benchmark|file.ir>")
	os.Exit(2)
}

// cmdOpt runs the mid-end optimizer and prints the result. Running it
// before `protect` is the correct pipeline order; running it after
// nullifies the protection (see internal/opt).
func cmdOpt(args []string) error {
	fs := flag.NewFlagSet("opt", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("opt: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	changed := opt.Run(m, opt.Standard())
	if err := m.Verify(); err != nil {
		return fmt.Errorf("optimizer produced invalid IR: %w", err)
	}
	fmt.Fprintf(os.Stderr, "opt: %d pass applications changed the module\n", changed)
	fmt.Print(m.String())
	return nil
}

// loadModule resolves a benchmark name or IR file path to one module.
func loadModule(name string) (*ir.Module, error) {
	if bm, ok := bench.ByName(name); ok {
		return bm.Build(), nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("%q is neither a benchmark nor a readable file", name)
	}
	m, err := ir.Parse(string(src))
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("verify %s: %w", name, err)
	}
	return m, nil
}

// loadSource resolves a benchmark name or IR file path to a pipeline
// source. File sources are keyed by content hash, so two invocations
// over the same text share artifacts and edits change the key.
func loadSource(name string) (pipeline.Source, error) {
	if bm, ok := bench.ByName(name); ok {
		return pipeline.BenchSource(bm), nil
	}
	src, err := os.ReadFile(name)
	if err != nil {
		return pipeline.Source{}, fmt.Errorf("%q is neither a benchmark nor a readable file", name)
	}
	text := string(src)
	m, err := ir.Parse(text)
	if err != nil {
		return pipeline.Source{}, fmt.Errorf("parse %s: %w", name, err)
	}
	if err := m.Verify(); err != nil {
		return pipeline.Source{}, fmt.Errorf("verify %s: %w", name, err)
	}
	sum := sha256.Sum256(src)
	return pipeline.Source{
		Key: fmt.Sprintf("file:%s#%x", name, sum[:4]),
		Build: func() *ir.Module {
			// Already validated above; reparsing is the cheapest way to
			// hand the pipeline a fresh, independent module.
			m, err := ir.Parse(text)
			if err != nil {
				panic(fmt.Sprintf("flowery: reparse %s: %v", name, err))
			}
			return m
		},
	}, nil
}

// protection holds the shared protection flags.
type protection struct {
	level   *float64
	flowery *bool
	samples *int
	seed    *int64
}

func addProtection(fs *flag.FlagSet) protection {
	return protection{
		level:   fs.Float64("level", 1.0, "protection level in (0,1]"),
		flowery: fs.Bool("flowery", false, "apply the Flowery patches after duplication"),
		samples: fs.Int("samples", 800, "profiling injections for selective protection"),
		seed:    fs.Int64("seed", 2023, "random seed"),
	}
}

// pipelineConfig builds the artifact-pipeline configuration the flags
// imply (runs only matters for inject).
func (p protection) pipelineConfig(runs int) pipeline.Config {
	return pipeline.Config{
		Runs:           runs,
		ProfileSamples: *p.samples,
		Seed:           *p.seed,
		Telemetry:      telemetryReg,
		Span:           telemetryRoot,
	}
}

// variant maps the flags to a pipeline variant: full duplication at
// level 1, profile-driven selection below, plus all Flowery patches
// when requested.
func (p protection) variant() pipeline.Variant {
	full := *p.level >= 1
	switch {
	case full && *p.flowery:
		return pipeline.FullFloweryVariant(flowery.All())
	case full:
		return pipeline.FullIDVariant()
	case *p.flowery:
		return pipeline.FloweryVariant(dup.Level(*p.level), flowery.All())
	default:
		return pipeline.IDVariant(dup.Level(*p.level))
	}
}

// reportFlowery prints the transform statistics when -flowery was used.
func (p protection) reportFlowery(pl *pipeline.Pipeline, src pipeline.Source, v pipeline.Variant) error {
	if !*p.flowery {
		return nil
	}
	st, err := pl.FloweryStats(src, v)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "flowery: hoisted %d stores, patched %d branches, isolated %d compares in %v\n",
		st.StoresHoisted, st.BranchesPatched, st.CmpsIsolated, st.Elapsed)
	return nil
}

func cmdIR(args []string) error {
	fs := flag.NewFlagSet("ir", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("ir: need one benchmark or file")
	}
	m, err := loadModule(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(m.String())
	return nil
}

func cmdProtect(args []string) error {
	fs := flag.NewFlagSet("protect", flag.ExitOnError)
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("protect: need one benchmark or file")
	}
	src, err := loadSource(fs.Arg(0))
	if err != nil {
		return err
	}
	pl := pipeline.New(p.pipelineConfig(0))
	v := p.variant()
	m, err := pl.Module(src, v)
	if err != nil {
		return err
	}
	if err := p.reportFlowery(pl, src, v); err != nil {
		return err
	}
	fmt.Print(m.String())
	return nil
}

func cmdAsm(args []string) error {
	fs := flag.NewFlagSet("asm", flag.ExitOnError)
	prot := fs.Bool("protect", false, "duplicate before lowering")
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("asm: need one benchmark or file")
	}
	src, err := loadSource(fs.Arg(0))
	if err != nil {
		return err
	}
	v := pipeline.RawVariant()
	if *prot {
		v = p.variant()
	}
	pl := pipeline.New(p.pipelineConfig(0))
	c, err := pl.Compiled(src, v, backend.Config{})
	if err != nil {
		return err
	}
	fmt.Print(c.Prog.String())
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	layer := fs.String("layer", "asm", "execution layer: ir|asm")
	prot := fs.Bool("protect", false, "duplicate before running")
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need one benchmark or file")
	}
	src, err := loadSource(fs.Arg(0))
	if err != nil {
		return err
	}
	v := pipeline.RawVariant()
	if *prot {
		v = p.variant()
	}
	l, err := parseLayer(*layer)
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	pl := pipeline.New(p.pipelineConfig(0))
	// Build the engine through the pipeline but run it directly: unlike
	// Golden, a trap or wrong exit should be reported, not failed.
	factory, err := pl.EngineFactory(src, v, l, backend.Config{})
	if err != nil {
		return err
	}
	eng, err := factory()
	if err != nil {
		return err
	}
	res := eng.Run(sim.Fault{}, sim.Options{Metrics: telemetryReg})
	os.Stdout.Write(res.Output)
	fmt.Fprintf(os.Stderr, "status=%v trap=%v ret=%d dynamic=%d injectable=%d\n",
		res.Status, res.Trap, res.RetVal, res.DynInstrs, res.InjectableInstrs)
	return nil
}

func cmdInject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	layer := fs.String("layer", "asm", "execution layer: ir|asm")
	runs := fs.Int("runs", 1000, "number of fault injections")
	prot := fs.Bool("protect", false, "duplicate before injecting")
	prune := fs.Bool("prune", false, "equivalence-pruned campaign: inject pilots per fault class and extrapolate")
	pilots := fs.Int("pilots", 3, "with -prune: average pilot budget per live class (1..8)")
	maskStatic := fs.Bool("maskstatic", false, "with -prune: score statically proven-masked bits benign without injection (internal/bitmask)")
	sections := fs.Bool("sections", false, "compositional campaign: one sub-campaign per program section, unchanged sections recalled from the artifact store")
	workers := fs.Int("workers", 0, "campaign parallelism: engine goroutines per process (0 = GOMAXPROCS); outcomes are identical at any width")
	shards := fs.Int("shards", 0, "partition the campaign into this many run ranges (0 = unsharded; full campaigns only)")
	shardWorkers := fs.Int("shard-workers", 0, "with -shards: farm shards to this many flowery worker processes (<= 1 stays in-process)")
	remoteWorkers := fs.String("remote-workers", "", "with -shards: comma-separated socket worker addresses (flowery shard-worker -listen host:port) to dial for shard execution")
	remoteListen := fs.String("remote-listen", "", "with -shards: listen on this host:port for socket workers dialing in (flowery shard-worker -connect)")
	remoteHeartbeat := fs.Duration("remote-heartbeat", 0, "socket transport liveness interval (0 = 1s): worker ping period and coordinator read-deadline slice")
	remoteRedials := fs.Int("remote-redials", 0, "socket transport reconnect budget per address per outage (0 = 5, negative = no redials)")
	reclogOut := fs.String("reclog", "", "write every run's record to this file as a compact binary log (internal/reclog; full campaigns only)")
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inject: need one benchmark or file")
	}
	remote := *remoteWorkers != "" || *remoteListen != ""
	// Validate the whole flag combination up front through the shared
	// spec validator (internal/api) — the same rules the daemon applies —
	// so an inconsistent invocation fails with one line before any
	// profiling or module derivation starts.
	spec := injectSpec(fs.Arg(0), *layer, *runs, *prune, *pilots, *maskStatic, *sections,
		*workers, *shards, *shardWorkers, remote, *reclogOut != "", *prot, p)
	if err := spec.Normalize(); err != nil {
		return fmt.Errorf("inject: %w", err)
	}
	src, err := loadSource(fs.Arg(0))
	if err != nil {
		return err
	}
	v := pipeline.RawVariant()
	if *prot {
		v = p.variant()
	}
	l, err := parseLayer(*layer)
	if err != nil {
		return fmt.Errorf("inject: %w", err)
	}
	cfg := p.pipelineConfig(*runs)
	cfg.CampaignWorkers = *workers
	cfg.Shards = *shards
	if *shardWorkers > 1 {
		cfg.ShardProcs = *shardWorkers
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("inject: resolving own binary for shard workers: %w", err)
		}
		cfg.ShardCommand = []string{self, "shard-worker"}
	}
	if remote {
		cfg.RemoteWorkers = splitAddrs(*remoteWorkers)
		cfg.RemoteListen = *remoteListen
		cfg.RemoteHeartbeat = *remoteHeartbeat
		cfg.RemoteRedials = *remoteRedials
	}
	pl := pipeline.New(cfg)
	opts := pipeline.CampaignOpts{Layer: l}
	if *prune {
		opts.Pruning = campaign.PruneClasses
		opts.PilotsPerClass = *pilots
		opts.MaskStatic = *maskStatic
	}
	var logFile *os.File
	var logW *reclog.Writer
	var recErr error
	if *reclogOut != "" {
		logFile, err = os.Create(*reclogOut)
		if err != nil {
			return err
		}
		defer logFile.Close()
		logW = reclog.NewWriter(logFile)
		opts.Records = func(r campaign.Record) {
			if recErr == nil {
				recErr = logW.Write(reclog.Record{
					Run:     int64(r.Run),
					Outcome: uint8(r.Outcome),
					Origin:  uint8(r.Origin),
					Target:  r.Target,
					Bit:     r.Bit,
				})
			}
		}
	}
	var st campaign.Stats
	if *sections {
		res, serr := pl.CampaignSectioned(src, v, opts)
		if serr != nil {
			return serr
		}
		st = res.Stats
	} else if st, err = pl.Campaign(src, v, opts); err != nil {
		return err
	}
	if logW != nil {
		if recErr != nil {
			return fmt.Errorf("inject: writing %s: %w", *reclogOut, recErr)
		}
		if err := logW.Close(); err != nil {
			return fmt.Errorf("inject: finalizing %s: %w", *reclogOut, err)
		}
		fmt.Fprintf(os.Stderr, "inject: wrote %d records to %s\n", st.Runs, *reclogOut)
	}
	printCampaign(st, l)
	return nil
}

// injectSpec maps inject's flags onto the shared job spec so the
// combination is validated by exactly the rules `flowery remote` and
// the daemon apply. The program argument stands in as the benchmark
// name — loadSource resolves names vs files afterward.
func injectSpec(program, layer string, runs int, prune bool, pilots int, maskStatic, sections bool, workers, shards, shardWorkers int, remote, records, prot bool, p protection) api.JobSpec {
	spec := api.JobSpec{
		Benchmark:     program,
		Layer:         layer,
		Runs:          runs,
		Seed:          *p.seed,
		Samples:       *p.samples,
		Protect:       prot,
		Level:         *p.level,
		Flowery:       *p.flowery,
		Prune:         prune,
		MaskStatic:    maskStatic,
		Sections:      sections,
		Workers:       workers,
		Shards:        shards,
		ShardWorkers:  shardWorkers,
		RemoteWorkers: remote,
		Records:       records,
	}
	if prune {
		spec.Pilots = pilots
	}
	return spec
}

// splitAddrs parses a comma-separated address list, dropping empties.
func splitAddrs(csv string) []string {
	var out []string
	for _, a := range strings.Split(csv, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// cmdShardWorker runs the worker half of the shard protocol: on
// stdin/stdout with no flags (the pipe transport the coordinator spawns
// directly), or over a socket with -connect (dial a coordinator's
// -remote-listen or a floweryd -shard-listen hub, re-registering after
// each job) / -listen (serve dialing coordinators; -addr-file resolves
// host:0 for scripts).
func cmdShardWorker(args []string) error {
	fs := flag.NewFlagSet("shard-worker", flag.ExitOnError)
	connect := fs.String("connect", "", "dial this coordinator or floweryd -shard-listen hub (host:port)")
	listen := fs.String("listen", "", "serve coordinators on this address (host:port or host:0)")
	addrFile := fs.String("addr-file", "", "with -listen: write the bound address here once listening")
	name := fs.String("name", "", "worker identity registered in the hello (default <hostname>-<pid>; coordinators reject duplicates)")
	heartbeat := fs.Duration("heartbeat", 0, "liveness ping interval (0 = 1s)")
	redials := fs.Int("redials", 0, "with -connect: reconnect budget per outage (0 = 5)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		return fmt.Errorf("shard-worker: unexpected arguments %v", fs.Args())
	}
	if *connect == "" && *listen == "" {
		return shard.ServeWorker(os.Stdin, os.Stdout)
	}
	return shard.RunWorker(shard.WorkerOpts{
		Connect:   *connect,
		Listen:    *listen,
		AddrFile:  *addrFile,
		Name:      *name,
		Heartbeat: *heartbeat,
		Redials:   *redials,
	})
}

// printCampaign renders campaign statistics the way inject always has;
// `flowery remote inject` prints the daemon's stats through the same
// renderer so the two paths are diffable.
func printCampaign(st campaign.Stats, l pipeline.Layer) {
	fmt.Printf("runs=%d golden_dyn=%d injectable=%d\n", st.Runs, st.GoldenDyn, st.GoldenInjectable)
	if st.Sectioned {
		// Sectioned stats are composed, so the injection count is the
		// incremental work actually executed (0 when every section was
		// recalled from the store).
		_, lo, hi := st.SDCRateCI()
		fmt.Printf("sectioned: sections=%d executed=%d recalled=%d pilot_runs=%d  sdc 95%% CI [%.4f, %.4f]\n",
			st.Sections, st.SectionsExecuted, st.SectionsRecalled, st.PilotRuns, lo, hi)
		if st.Classes > 0 {
			fmt.Printf("pruned: classes=%d dead_sites=%d\n", st.Classes, st.DeadSites)
		}
		if st.MaskedBits > 0 {
			fmt.Printf("masked: sites=%d bits=%d statically proven benign (of %d)\n",
				st.MaskedSites, st.MaskedBits, 64*st.GoldenInjectable)
		}
	} else if st.Pruned {
		_, lo, hi := st.SDCRateCI()
		fmt.Printf("pruned: classes=%d dead_sites=%d pilot_runs=%d (%.1fx fewer injections)  sdc 95%% CI [%.4f, %.4f]\n",
			st.Classes, st.DeadSites, st.PilotRuns,
			float64(st.Runs)/float64(st.PilotRuns), lo, hi)
		if st.MaskedBits > 0 {
			fmt.Printf("masked: sites=%d bits=%d statically proven benign (of %d)\n",
				st.MaskedSites, st.MaskedBits, 64*st.GoldenInjectable)
		}
	}
	for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
		fmt.Printf("%-9s %6d  %6.2f%%\n", o, st.Counts[o], st.Rate(o)*100)
	}
	anySDC := false
	for _, c := range st.SDCByOrigin {
		if c > 0 {
			anySDC = true
		}
	}
	if anySDC && l == pipeline.LayerAsm {
		fmt.Println("SDCs by origin:")
		for o := 0; o < asm.NumOrigins; o++ {
			if st.SDCByOrigin[o] > 0 {
				fmt.Printf("  %-9s %6d\n", asm.Origin(o), st.SDCByOrigin[o])
			}
		}
	}
}

func parseLayer(s string) (pipeline.Layer, error) {
	switch s {
	case "ir":
		return pipeline.LayerIR, nil
	case "asm":
		return pipeline.LayerAsm, nil
	}
	return 0, fmt.Errorf("bad layer %q", s)
}
