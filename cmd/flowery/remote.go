package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"flowery/internal/api"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/pipeline"
)

// cmdRemote is the floweryd client:
//
//	flowery remote -addr http://host:port inject [inject flags] <benchmark|file.ir>
//	flowery remote -addr ... study [-runs n] [-samples n] [-seed n] [bench ...]
//	flowery remote -addr ... jobs | job <id> | cancel <id>
//	flowery remote -addr ... reclog <id> <out-file>
//	flowery remote -addr ... metrics [id] | health
//
// `remote inject` submits, streams until the job finishes, and prints
// the campaign statistics through exactly the renderer the local
// `flowery inject` uses, so the two are diffable line for line.
func cmdRemote(args []string) error {
	fs := flag.NewFlagSet("remote", flag.ExitOnError)
	addr := fs.String("addr", envOr("FLOWERYD_ADDR", "http://127.0.0.1:8080"), "daemon base URL (or $FLOWERYD_ADDR)")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("remote: need an action: inject|study|jobs|job|cancel|reclog|metrics|health")
	}
	c := &api.Client{Base: *addr}
	action, rest := fs.Arg(0), fs.Args()[1:]
	switch action {
	case "inject":
		return remoteInject(c, rest)
	case "study":
		return remoteStudy(c, rest)
	case "jobs":
		return remoteJobs(c)
	case "job":
		if len(rest) != 1 {
			return fmt.Errorf("remote job: need one job id")
		}
		ji, err := c.Job(rest[0])
		if err != nil {
			return err
		}
		printJob(ji)
		return nil
	case "cancel":
		if len(rest) != 1 {
			return fmt.Errorf("remote cancel: need one job id")
		}
		ji, err := c.Cancel(rest[0])
		if err != nil {
			return err
		}
		printJob(ji)
		return nil
	case "reclog":
		if len(rest) != 2 {
			return fmt.Errorf("remote reclog: need a job id and an output file")
		}
		blob, err := c.Reclog(rest[0])
		if err != nil {
			return err
		}
		if err := os.WriteFile(rest[1], blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "remote: wrote %d bytes to %s\n", len(blob), rest[1])
		return nil
	case "metrics":
		// Bare: the daemon-level registry. With a job id: that job's own
		// pipeline registry (engine runs, store hits, stage counters).
		path := "/metrics"
		if len(rest) == 1 {
			path = "/jobs/" + rest[0] + "/metrics"
		} else if len(rest) > 1 {
			return fmt.Errorf("remote metrics: at most one job id")
		}
		page, err := c.Metrics(path)
		if err != nil {
			return err
		}
		os.Stdout.Write(page)
		return nil
	case "health":
		h, err := c.Health()
		if err != nil {
			return err
		}
		fmt.Printf("status=%s version=%q", h.Status, h.Version)
		for _, s := range []string{api.StateQueued, api.StateRunning, api.StateDone, api.StateFailed, api.StateCancelled} {
			fmt.Printf(" %s=%d", s, h.Jobs[s])
		}
		fmt.Println()
		return nil
	default:
		return fmt.Errorf("remote: unknown action %q", action)
	}
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

// remoteInject mirrors cmdInject's flags, submits the spec, and streams
// the result.
func remoteInject(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("remote inject", flag.ExitOnError)
	layer := fs.String("layer", "asm", "execution layer: ir|asm")
	runs := fs.Int("runs", 1000, "number of fault injections")
	prot := fs.Bool("protect", false, "duplicate before injecting")
	prune := fs.Bool("prune", false, "equivalence-pruned campaign")
	pilots := fs.Int("pilots", 3, "with -prune: average pilot budget per live class (1..8)")
	maskStatic := fs.Bool("maskstatic", false, "with -prune: score statically proven-masked bits benign without injection")
	sections := fs.Bool("sections", false, "compositional campaign on the daemon: per-section sub-campaigns, unchanged sections recalled from its store")
	workers := fs.Int("workers", 0, "campaign parallelism on the daemon (0 = its GOMAXPROCS)")
	shards := fs.Int("shards", 0, "partition the campaign into this many run ranges")
	shardWorkers := fs.Int("shard-workers", 0, "with -shards: daemon-side worker processes")
	remoteWorkers := fs.Bool("remote-workers", false, "with -shards: fan shards out to socket workers registered with the daemon's -shard-listen hub")
	reclogOut := fs.String("reclog", "", "download the run records to this file as a binary log")
	p := addProtection(fs)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("remote inject: need one benchmark or file")
	}

	spec := injectSpec(fs.Arg(0), *layer, *runs, *prune, *pilots, *maskStatic, *sections,
		*workers, *shards, *shardWorkers, *remoteWorkers, *reclogOut != "", *prot, p)
	// A file program rides to the daemon as inline IR text.
	if _, ok := bench.ByName(fs.Arg(0)); !ok {
		text, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fmt.Errorf("%q is neither a benchmark nor a readable file", fs.Arg(0))
		}
		spec.Benchmark = ""
		spec.IR = string(text)
	}

	sr, err := c.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote: job %s %s\n", sr.ID, sr.State)

	rs, err := c.Results(sr.ID)
	if err != nil {
		return err
	}
	defer rs.Close()
	var stats *campaign.Stats
	records := 0
	for {
		line, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch {
		case line.Record != nil:
			records++
		case line.Stats != nil:
			stats = line.Stats
		case line.Error != "":
			return fmt.Errorf("remote: job %s: %s", sr.ID, line.Error)
		}
	}
	if stats == nil {
		return fmt.Errorf("remote: job %s ended without statistics", sr.ID)
	}
	if *reclogOut != "" {
		blob, err := c.Reclog(sr.ID)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*reclogOut, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "inject: wrote %d records to %s\n", records, *reclogOut)
	}
	l := pipeline.LayerAsm
	if spec.Layer == "ir" {
		l = pipeline.LayerIR
	}
	printCampaign(*stats, l)
	return nil
}

// remoteStudy submits a study job and prints its JSON document.
func remoteStudy(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("remote study", flag.ExitOnError)
	runs := fs.Int("runs", 0, "injections per campaign (0 = daemon default)")
	samples := fs.Int("samples", 0, "profiling injections (0 = daemon default)")
	seed := fs.Int64("seed", 0, "random seed (0 = daemon default)")
	workers := fs.Int("workers", 0, "daemon-side parallelism")
	fs.Parse(args)

	spec := api.JobSpec{
		Kind:       api.KindStudy,
		Benchmarks: fs.Args(),
		Runs:       *runs,
		Samples:    *samples,
		Seed:       *seed,
		Workers:    *workers,
	}
	sr, err := c.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "remote: job %s %s\n", sr.ID, sr.State)
	rs, err := c.Results(sr.ID)
	if err != nil {
		return err
	}
	defer rs.Close()
	for {
		line, err := rs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		switch {
		case line.Study != nil:
			os.Stdout.Write(line.Study)
			fmt.Println()
			return nil
		case line.Error != "":
			return fmt.Errorf("remote: job %s: %s", sr.ID, line.Error)
		}
	}
	return fmt.Errorf("remote: job %s ended without a study document", sr.ID)
}

func remoteJobs(c *api.Client) error {
	jobs, err := c.Jobs()
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Println("no jobs")
		return nil
	}
	for _, ji := range jobs {
		printJob(ji)
	}
	return nil
}

func printJob(ji api.JobInfo) {
	program := ji.Spec.Benchmark
	if program == "" && ji.Spec.IR != "" {
		program = "<inline ir>"
	}
	if ji.Kind == api.KindStudy {
		program = fmt.Sprintf("study %v", ji.Spec.Benchmarks)
		if len(ji.Spec.Benchmarks) == 0 {
			program = "study <all>"
		}
	}
	dur := ""
	if ji.StartedAt != nil {
		end := time.Now()
		if ji.FinishedAt != nil {
			end = *ji.FinishedAt
		}
		dur = " " + end.Sub(*ji.StartedAt).Round(time.Millisecond).String()
	}
	fmt.Printf("%-6s %-9s %-24s runs=%d%s", ji.ID, ji.State, program, ji.Spec.Runs, dur)
	if ji.Error != "" {
		fmt.Printf(" error=%q", ji.Error)
	}
	fmt.Println()
}
