// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index):
//
//	experiments                      # everything, default scale
//	experiments -only fig2           # one artifact
//	experiments -bench bfs,lud       # a subset of benchmarks
//	experiments -runs 3000           # the paper's campaign size
//	experiments -telemetry           # print pipeline cache counters
//	experiments -pipeline=false      # legacy serial path (no memoization)
//	experiments -only results -metrics out.json -trace trace.json
//	                                 # compute results, emit telemetry only
//
// All artifacts are served by one memoized artifact pipeline (DESIGN.md
// §9), so overlapping campaigns are executed once no matter how many
// artifacts request them; -pipeline=false selects the pre-pipeline
// serial path, which computes identical results.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/experiment"
	"flowery/internal/shard"
	"flowery/internal/telemetry"
	"flowery/internal/version"
)

// validArtifacts is every value -only accepts.
var validArtifacts = []string{
	"all", "table1", "fig2", "fig3", "fig17", "overhead", "passtime",
	"ablation", "pressure", "convergence", "campbench", "pipebench",
	"prunebench", "maskbench", "sectionbench", "simbench", "shardbench",
	"results",
}

func benchByName(n string) (bench.Benchmark, bool) { return bench.ByName(n) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func main() {
	// When spawned as a shard worker (FLOWERY_SHARD_WORKER set by the
	// coordinator), serve the worker protocol instead of running
	// experiments.
	shard.MaybeServeWorker()

	runs := flag.Int("runs", 0, "fault injections per campaign (0 = default scale)")
	samples := flag.Int("samples", 0, "profiling injections (0 = default)")
	seed := flag.Int64("seed", 2023, "random seed")
	only := flag.String("only", "all", "artifact: "+strings.Join(validArtifacts[1:], "|")+"|all")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 16)")
	workers := flag.Int("workers", 0, "parallelism: pipeline scheduler width, or campaign workers on the serial path (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "partition every full campaign into this many run ranges (campaign.RunSharded; pipeline path only, 0 = unsharded)")
	shardWorkers := flag.Int("shard-workers", 0, "with -shards: farm shards to this many worker processes (<= 1 executes in-process)")
	remoteWorkers := flag.String("remote-workers", "", "with -shards: comma-separated socket worker addresses (flowery shard-worker -listen) to dial instead of local workers")
	quiet := flag.Bool("q", false, "suppress progress output")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	pipelineOn := flag.Bool("pipeline", true, "serve artifacts from the memoized pipeline (false = legacy serial path)")
	telemetryFlag := flag.Bool("telemetry", false, "print per-stage pipeline cache/wall telemetry to stderr")
	maskStatic := flag.Bool("maskstatic", false, "run every per-level campaign equivalence-pruned with statically proven-masked bits scored benign (internal/bitmask)")
	sections := flag.Bool("sections", false, "run every per-level campaign compositionally (one sub-campaign per program section, composed statistics)")
	refcore := flag.Bool("refcore", false, "pin simulations to the engines' reference loops instead of the predecoded fast cores (bit-identical results, slower)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	metricsOut := flag.String("metrics", "", "write the telemetry run report to this file (JSON, or Prometheus text when the path ends in .prom)")
	traceOut := flag.String("trace", "", "write the telemetry span tree to this file (JSON)")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Line("experiments"))
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	valid := false
	for _, a := range validArtifacts {
		if *only == a {
			valid = true
			break
		}
	}
	if !valid {
		sorted := append([]string(nil), validArtifacts...)
		sort.Strings(sorted)
		fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q (valid: %s)\n",
			*only, strings.Join(sorted, ", "))
		os.Exit(2)
	}

	cfg := experiment.DefaultConfig()
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *samples > 0 {
		cfg.ProfileSamples = *samples
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Shards = *shards
	cfg.ShardWorkers = *shardWorkers
	for _, a := range strings.Split(*remoteWorkers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			cfg.RemoteWorkers = append(cfg.RemoteWorkers, a)
		}
	}
	cfg.Reference = *refcore
	if *maskStatic {
		// Masking rides on pruned campaigns, so -maskstatic implies them.
		// The benchmark artifacts control their own campaign sides (full,
		// pruned, or both) and would silently ignore the flag — reject
		// instead.
		switch *only {
		case "ablation", "pressure", "convergence", "campbench", "pipebench",
			"prunebench", "maskbench", "sectionbench", "simbench", "shardbench":
			fmt.Fprintf(os.Stderr, "experiments: -maskstatic does not apply to %q (that artifact controls its own campaign sides)\n", *only)
			os.Exit(2)
		}
		cfg.Pruning = campaign.PruneClasses
		cfg.MaskStatic = true
	}
	if *sections {
		// Sectioned campaigns feed the same per-level statistics, but the
		// benchmark artifacts above control their own campaign sides and
		// sectionbench measures sectioning itself — reject rather than
		// silently ignore. Sharding is also out: sectioned campaigns
		// partition by program section instead of run range.
		switch *only {
		case "ablation", "pressure", "convergence", "campbench", "pipebench",
			"prunebench", "maskbench", "sectionbench", "simbench", "shardbench":
			fmt.Fprintf(os.Stderr, "experiments: -sections does not apply to %q (that artifact controls its own campaign sides)\n", *only)
			os.Exit(2)
		}
		if *shards > 0 {
			fmt.Fprintln(os.Stderr, "experiments: -sections and -shards conflict: sectioned campaigns partition by program section instead of run range")
			os.Exit(2)
		}
		cfg.Sections = true
	}
	if *metricsOut != "" || *traceOut != "" {
		cfg.Telemetry = telemetry.New()
	}

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	progress := func(name string, d time.Duration) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[experiments] %-14s done in %v\n", name, d.Round(time.Millisecond))
		}
	}

	// The study is the shared memoized pipeline every artifact below
	// draws from; nil when -pipeline=false.
	var study *experiment.Study
	if *pipelineOn {
		study = experiment.NewStudy(cfg)
	}
	printTelemetry := func() {
		if *telemetryFlag && study != nil {
			fmt.Fprint(os.Stderr, study.Telemetry().String())
		}
	}
	// Every artifact path below returns through this: close the study's
	// root span and render the -metrics/-trace artifacts.
	defer func() {
		if cfg.Telemetry == nil {
			return
		}
		if study != nil {
			study.Finish()
		}
		if err := telemetry.WriteFiles(cfg.Telemetry, *metricsOut, *traceOut); err != nil {
			fail(err)
		}
	}()

	// resolve maps -bench names (with a per-artifact default) to
	// benchmarks up front, so typos fail before any campaign runs.
	resolve := func(def []string) []bench.Benchmark {
		ns := names
		if len(ns) == 0 {
			ns = def
		}
		var bms []bench.Benchmark
		for _, n := range ns {
			bm, ok := benchByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown benchmark %q\n", n)
				os.Exit(1)
			}
			bms = append(bms, bm)
		}
		return bms
	}

	switch *only {
	// The pipeline-memoization benchmark; with -json it emits the
	// BENCH_2.json artifact. Builds its own studies (it measures both
	// modes), so -pipeline does not apply.
	case "pipebench":
		r, err := experiment.RunPipeBench(names, cfg)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			s, err := experiment.PipeBenchJSON(r)
			if err != nil {
				fail(err)
			}
			fmt.Print(s)
			return
		}
		fmt.Println(experiment.PipeBench(r))
		return

	// The equivalence-pruning cross-validation (full vs pruned campaigns
	// on the same benchmarks); with -json it emits the BENCH_3.json
	// artifact. Builds its own study at its own default campaign scale —
	// unless -runs overrides it — so -pipeline does not apply.
	case "prunebench":
		pcfg := cfg
		pcfg.Runs = *runs // 0 = the artifact's own default scale
		points, err := experiment.RunPruneBench(names, nil, pcfg)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			data, err := experiment.PruneBenchJSON(points, pcfg)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		fmt.Println(experiment.PruneBench(points))
		return

	// The static bit-masking cross-validation (full vs pruned vs
	// pruned+masked campaigns, plus an injection probe of proven-masked
	// bits); with -json it emits the BENCH_6.json artifact. Builds its
	// own study at its own default campaign scale — unless -runs
	// overrides it — so -pipeline does not apply.
	case "maskbench":
		mcfg := cfg
		mcfg.Runs = *runs // 0 = the artifact's own default scale
		points, err := experiment.RunMaskBench(names, nil, mcfg)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			data, err := experiment.MaskBenchJSON(points, mcfg)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		fmt.Println(experiment.MaskBench(points))
		return

	// The compositional-campaign benchmark (full re-analysis vs
	// per-section incremental recomputation after a one-function edit,
	// plus the budgeted per-section protection placement); with -json it
	// emits the BENCH_7.json artifact. Builds its own study at its own
	// default campaign scale — unless -runs overrides it — so -pipeline
	// does not apply.
	case "sectionbench":
		scfg := cfg
		scfg.Runs = *runs // 0 = the artifact's own default scale
		points, err := experiment.RunSectionBench(names, scfg)
		if err != nil {
			fail(err)
		}
		if *jsonOut {
			data, err := experiment.SectionBenchJSON(points, scfg)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		fmt.Println(experiment.SectionBench(points))
		return

	// The campaign-size convergence study; campaigns at every size share
	// the study's compiled modules.
	case "convergence":
		var results []*experiment.ConvergenceResult
		for _, bm := range resolve([]string{"lud"}) {
			start := time.Now()
			var r *experiment.ConvergenceResult
			var err error
			if study != nil {
				r, err = study.Convergence(bm)
			} else {
				r, err = experiment.RunConvergence(bm, cfg)
			}
			if err != nil {
				fail(err)
			}
			results = append(results, r)
			progress(bm.Name, time.Since(start))
		}
		fmt.Println(experiment.Convergence(results))
		printTelemetry()
		return

	// The engine-throughput benchmark (reference loop vs predecoded fast
	// core) intentionally runs both cores on identical inputs, so -refcore
	// does not apply; with -json it emits the BENCH_4.json artifact.
	case "simbench":
		var perfs []experiment.SimPerf
		for _, bm := range resolve([]string{"crc32", "susan"}) {
			start := time.Now()
			ps, err := experiment.RunSimBench(bm, cfg)
			if err != nil {
				fail(err)
			}
			perfs = append(perfs, ps...)
			progress(bm.Name, time.Since(start))
		}
		if *jsonOut {
			data, err := experiment.SimBenchJSON(perfs, cfg)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		fmt.Println(experiment.SimBench(perfs))
		return

	// The campaign-throughput benchmark (scratch vs checkpoint
	// fast-forward) intentionally re-runs identical campaigns under both
	// snapshot policies, so it never goes through the cache; with -json
	// it emits the BENCH_1.json artifact.
	case "campbench":
		var perfs []experiment.CampaignPerf
		for _, bm := range resolve([]string{"susan"}) {
			start := time.Now()
			ps, err := experiment.RunCampaignPerf(bm, cfg)
			if err != nil {
				fail(err)
			}
			perfs = append(perfs, ps...)
			progress(bm.Name, time.Since(start))
		}
		if *jsonOut {
			data, err := experiment.CampaignBenchJSON(perfs, cfg)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		fmt.Println(experiment.CampaignBench(perfs))
		return

	// The sharded multi-process campaign benchmark: scaling over worker
	// process counts plus the record-log encoding comparison; with -json
	// it emits the BENCH_5.json artifact. Builds its own pools (it
	// measures the process executor directly), so -pipeline and
	// -shards/-shard-workers do not apply.
	case "shardbench":
		ns := names
		if len(ns) == 0 {
			ns = []string{"crc32", "susan"}
		}
		start := time.Now()
		results, err := experiment.RunShardBench(ns, cfg)
		if err != nil {
			fail(err)
		}
		progress("shardbench", time.Since(start))
		if *jsonOut {
			data, err := experiment.ShardBenchJSON(results, cfg)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		fmt.Println(experiment.ShardBench(results))
		return

	// The register-pressure sweep lowers the shared module artifacts
	// under each scratch budget.
	case "pressure":
		var results []*experiment.PressureResult
		for _, bm := range resolve([]string{"bfs", "susan"}) {
			start := time.Now()
			var r *experiment.PressureResult
			var err error
			if study != nil {
				r, err = study.Pressure(bm)
			} else {
				r, err = experiment.RunPressure(bm, cfg)
			}
			if err != nil {
				fail(err)
			}
			results = append(results, r)
			progress(bm.Name, time.Since(start))
		}
		fmt.Println(experiment.Pressure(results))
		printTelemetry()
		return

	// The ablation study (patch subsets at full protection) defaults to
	// a representative benchmark subset.
	case "ablation":
		var results []*experiment.AblationResult
		for _, bm := range resolve([]string{"bfs", "lud", "quicksort", "susan"}) {
			start := time.Now()
			var r *experiment.AblationResult
			var err error
			if study != nil {
				r, err = study.Ablation(bm)
			} else {
				r, err = experiment.RunAblation(bm, cfg)
			}
			if err != nil {
				fail(err)
			}
			results = append(results, r)
			progress(bm.Name, time.Since(start))
		}
		fmt.Println(experiment.Ablation(results))
		printTelemetry()
		return
	}

	start := time.Now()
	var results []*experiment.BenchResult
	var err error
	if study != nil {
		results, err = study.Results(names, progress)
	} else {
		results, err = experiment.RunAllSerial(names, cfg, progress)
	}
	if err != nil {
		fail(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "[experiments] total %v (%d runs/campaign, seed %d)\n",
			time.Since(start).Round(time.Millisecond), cfg.Runs, cfg.Seed)
		if saved, simulated := experiment.FastForwardSummary(results); saved > 0 {
			fmt.Fprintf(os.Stderr, "[experiments] checkpoint fast-forward skipped %.1f%% of instruction work (%d of %d instrs)\n",
				float64(saved)/float64(saved+simulated)*100, saved, saved+simulated)
		}
	}
	printTelemetry()

	if *jsonOut {
		data, err := experiment.ToJSON(results, cfg)
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	artifacts := []struct {
		key    string
		render func([]*experiment.BenchResult) string
	}{
		{"table1", experiment.Table1},
		{"fig2", experiment.Figure2},
		{"fig3", experiment.Figure3},
		{"fig17", experiment.Figure17},
		{"overhead", experiment.Overhead},
		{"passtime", experiment.PassTime},
	}
	for _, a := range artifacts {
		if *only == "all" || *only == a.key {
			fmt.Println(a.render(results))
		}
	}
}
