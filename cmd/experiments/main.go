// Command experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the experiment index):
//
//	experiments                      # everything, default scale
//	experiments -only fig2           # one artifact
//	experiments -bench bfs,lud       # a subset of benchmarks
//	experiments -runs 3000           # the paper's campaign size
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flowery/internal/bench"
	"flowery/internal/experiment"
)

func benchByName(n string) (bench.Benchmark, bool) { return bench.ByName(n) }

func main() {
	runs := flag.Int("runs", 0, "fault injections per campaign (0 = default scale)")
	samples := flag.Int("samples", 0, "profiling injections (0 = default)")
	seed := flag.Int64("seed", 2023, "random seed")
	only := flag.String("only", "all", "artifact: table1|fig2|fig3|fig17|overhead|passtime|ablation|pressure|convergence|campbench|all")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 16)")
	workers := flag.Int("workers", 0, "campaign parallelism (0 = GOMAXPROCS)")
	quiet := flag.Bool("q", false, "suppress progress output")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	cfg := experiment.DefaultConfig()
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *samples > 0 {
		cfg.ProfileSamples = *samples
	}
	cfg.Seed = *seed
	cfg.Workers = *workers

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	progress := func(name string, d time.Duration) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[experiments] %-14s done in %v\n", name, d.Round(time.Millisecond))
		}
	}

	// The campaign-size convergence study runs its own pipeline.
	if *only == "convergence" {
		if len(names) == 0 {
			names = []string{"lud"}
		}
		var results []*experiment.ConvergenceResult
		for _, n := range names {
			bm, ok := benchByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown benchmark %q\n", n)
				os.Exit(1)
			}
			start := time.Now()
			r, err := experiment.RunConvergence(bm, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			results = append(results, r)
			progress(n, time.Since(start))
		}
		fmt.Println(experiment.Convergence(results))
		return
	}

	// The campaign-throughput benchmark (scratch vs checkpoint
	// fast-forward) runs its own pipeline; with -json it emits the
	// BENCH_1.json artifact.
	if *only == "campbench" {
		if len(names) == 0 {
			names = []string{"susan"}
		}
		var perfs []experiment.CampaignPerf
		for _, n := range names {
			bm, ok := benchByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown benchmark %q\n", n)
				os.Exit(1)
			}
			start := time.Now()
			ps, err := experiment.RunCampaignPerf(bm, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			perfs = append(perfs, ps...)
			progress(n, time.Since(start))
		}
		if *jsonOut {
			data, err := experiment.CampaignBenchJSON(perfs, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			os.Stdout.Write(data)
			fmt.Println()
			return
		}
		fmt.Println(experiment.CampaignBench(perfs))
		return
	}

	// The register-pressure sweep runs its own pipeline too.
	if *only == "pressure" {
		if len(names) == 0 {
			names = []string{"bfs", "susan"}
		}
		var results []*experiment.PressureResult
		for _, n := range names {
			bm, ok := benchByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown benchmark %q\n", n)
				os.Exit(1)
			}
			start := time.Now()
			r, err := experiment.RunPressure(bm, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			results = append(results, r)
			progress(n, time.Since(start))
		}
		fmt.Println(experiment.Pressure(results))
		return
	}

	// The ablation study runs its own pipeline (patch subsets at full
	// protection) and defaults to a representative benchmark subset.
	if *only == "ablation" {
		if len(names) == 0 {
			names = []string{"bfs", "lud", "quicksort", "susan"}
		}
		var results []*experiment.AblationResult
		for _, n := range names {
			bm, ok := benchByName(n)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown benchmark %q\n", n)
				os.Exit(1)
			}
			start := time.Now()
			r, err := experiment.RunAblation(bm, cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			results = append(results, r)
			progress(n, time.Since(start))
		}
		fmt.Println(experiment.Ablation(results))
		return
	}

	start := time.Now()
	results, err := experiment.RunAll(names, cfg, progress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "[experiments] total %v (%d runs/campaign, seed %d)\n",
			time.Since(start).Round(time.Millisecond), cfg.Runs, cfg.Seed)
		if saved, simulated := experiment.FastForwardSummary(results); saved > 0 {
			fmt.Fprintf(os.Stderr, "[experiments] checkpoint fast-forward skipped %.1f%% of instruction work (%d of %d instrs)\n",
				float64(saved)/float64(saved+simulated)*100, saved, saved+simulated)
		}
	}

	if *jsonOut {
		data, err := experiment.ToJSON(results, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		os.Stdout.Write(data)
		fmt.Println()
		return
	}

	artifacts := []struct {
		key    string
		render func([]*experiment.BenchResult) string
	}{
		{"table1", experiment.Table1},
		{"fig2", experiment.Figure2},
		{"fig3", experiment.Figure3},
		{"fig17", experiment.Figure17},
		{"overhead", experiment.Overhead},
		{"passtime", experiment.PassTime},
	}
	matched := false
	for _, a := range artifacts {
		if *only == "all" || *only == a.key {
			fmt.Println(a.render(results))
			matched = true
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q\n", *only)
		os.Exit(2)
	}
}
