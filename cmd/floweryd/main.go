// Command floweryd is the campaign-as-a-service daemon: it serves the
// artifact pipeline over HTTP so fault-injection campaigns and studies
// can be submitted as jobs, streamed as they run, and — backed by the
// persistent artifact store — answered without re-execution when an
// identical spec has been computed before, even by an earlier process.
//
//	floweryd -addr :8080 -store /var/lib/flowery
//
// The endpoint table lives in internal/api; the client is
// `flowery remote`. Layering: internal/api (wire types) →
// internal/service (job queue + workers + HTTP handlers) →
// internal/store (persistent artifacts); this binary only assembles
// them around a listener and signal handling.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flowery/internal/service"
	"flowery/internal/shard"
	"flowery/internal/store"
	"flowery/internal/telemetry"
	"flowery/internal/version"
)

func main() {
	// Sharded jobs re-execute this binary as shard workers; serve that
	// protocol before flag parsing, exactly like cmd/flowery.
	shard.MaybeServeWorker()
	if len(os.Args) > 1 && os.Args[1] == "shard-worker" {
		if err := shard.ServeWorker(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "floweryd:", err)
			os.Exit(1)
		}
		return
	}

	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for scripts using -addr :0)")
	shardListen := flag.String("shard-listen", "", "accept socket shard workers (flowery shard-worker -connect) on this address; enables remote_workers jobs")
	storeDir := flag.String("store", "", "persistent artifact store directory (empty = in-memory only)")
	storeMax := flag.Int64("store-max-bytes", 0, "evict least-recently-used artifacts beyond this many bytes (0 = unbounded)")
	workers := flag.Int("workers", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 64, "queued-job capacity; submissions beyond it are rejected")
	showVersion := flag.Bool("version", false, "print build identity and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.Line("floweryd"))
		return
	}

	if err := run(*addr, *addrFile, *shardListen, *storeDir, *storeMax, *workers, *queue); err != nil {
		fmt.Fprintln(os.Stderr, "floweryd:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile, shardListen, storeDir string, storeMax int64, workers, queue int) error {
	reg := telemetry.New()

	var artifacts store.Store
	if storeDir != "" {
		disk, err := store.OpenDisk(storeDir, store.DiskOptions{MaxBytes: storeMax, Metrics: reg})
		if err != nil {
			return fmt.Errorf("opening store %s: %w", storeDir, err)
		}
		defer disk.Close()
		artifacts = disk
		fmt.Fprintf(os.Stderr, "floweryd: artifact store %s (%d artifacts, %d bytes)\n",
			storeDir, disk.Len(), disk.TotalBytes())
	} else {
		artifacts = store.NewMemory(reg)
	}

	var hub *shard.Hub
	if shardListen != "" {
		hln, err := net.Listen("tcp", shardListen)
		if err != nil {
			return fmt.Errorf("-shard-listen %s: %w", shardListen, err)
		}
		hub = shard.NewHub(hln, shard.HubOpts{Metrics: reg})
		defer hub.Close()
		fmt.Fprintf(os.Stderr, "floweryd: shard workers welcome on %s\n", hub.Addr())
	}

	mgr := service.New(service.Config{
		Artifacts:  artifacts,
		Workers:    workers,
		QueueDepth: queue,
		Telemetry:  reg,
		Hub:        hub,
	})
	defer mgr.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		// Written after listening succeeds: a reader holding the file's
		// content can connect immediately.
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "floweryd: %s listening on %s\n", version.String(), bound)

	srv := &http.Server{Handler: service.NewServer(mgr)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "floweryd: %v — draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return nil
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}
