// Benchmarks regenerating the paper's evaluation artifacts, one per
// table/figure (see DESIGN.md §5), plus engine micro-benchmarks. Each
// artifact benchmark runs the full pipeline on a representative
// benchmark at reduced campaign scale and reports the headline quantity
// as a custom metric; `go run ./cmd/experiments` produces the complete
// 16-benchmark versions.
package flowery

import (
	"testing"

	"flowery/internal/asm"
	"flowery/internal/backend"
	"flowery/internal/bench"
	"flowery/internal/campaign"
	"flowery/internal/dup"
	"flowery/internal/experiment"
	fl "flowery/internal/flowery"
	"flowery/internal/interp"
	"flowery/internal/ir"
	"flowery/internal/machine"
	"flowery/internal/sim"
)

// benchCfg is the reduced scale used by the testing.B artifact benches.
var benchCfg = experiment.Config{Runs: 250, ProfileSamples: 300, Seed: 2023}

func mustBench(b *testing.B, name string) bench.Benchmark {
	b.Helper()
	bm, ok := bench.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %q", name)
	}
	return bm
}

// BenchmarkTable1 regenerates the benchmark-inventory table (Table 1):
// golden runs of every benchmark at both layers.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var totalIR, totalAsm int64
		for _, bm := range bench.All() {
			m := bm.Build()
			prog, err := backend.Lower(m)
			if err != nil {
				b.Fatal(err)
			}
			mc, err := machine.New(m, prog)
			if err != nil {
				b.Fatal(err)
			}
			ri := interp.New(m).Run(sim.Fault{}, sim.Options{})
			rm := mc.Run(sim.Fault{}, sim.Options{})
			if ri.Status != sim.StatusOK || rm.Status != sim.StatusOK {
				b.Fatalf("%s failed", bm.Name)
			}
			totalIR += ri.DynInstrs
			totalAsm += rm.DynInstrs
		}
		b.ReportMetric(float64(totalIR), "IR-dyn-instrs")
		b.ReportMetric(float64(totalAsm), "asm-dyn-instrs")
	}
}

// BenchmarkFigure2 regenerates the cross-layer coverage comparison
// (Figure 2) for one benchmark and reports the coverage gap at full
// protection.
func BenchmarkFigure2(b *testing.B) {
	bm := mustBench(b, "bfs")
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunBenchmark(bm, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		gap := r.CoverageIR(dup.Level100) - r.CoverageAsm(dup.Level100)
		b.ReportMetric(gap*100, "coverage-gap-%")
	}
}

// BenchmarkFigure3 regenerates the root-cause classification (Figure 3)
// and reports the share of deficiencies the three Flowery-fixable
// penetrations account for (paper: ~94.5%).
func BenchmarkFigure3(b *testing.B) {
	bm := mustBench(b, "lud")
	for i := 0; i < b.N; i++ {
		m := bm.Build()
		if err := dup.ApplyFull(m); err != nil {
			b.Fatal(err)
		}
		prog, err := backend.Lower(m)
		if err != nil {
			b.Fatal(err)
		}
		st, err := campaign.Run(func() (sim.Engine, error) { return machine.New(m, prog) },
			campaign.Spec{Runs: 600, Seed: benchCfg.Seed})
		if err != nil {
			b.Fatal(err)
		}
		total, fixable := 0, 0
		for o, c := range st.SDCByOrigin {
			total += c
			switch asm.Origin(o) {
			case asm.OriginStoreReload, asm.OriginBranchTest, asm.OriginCmpFolded:
				fixable += c
			}
		}
		if total > 0 {
			b.ReportMetric(float64(fixable)/float64(total)*100, "fixable-share-%")
		}
	}
}

// BenchmarkFigure17 regenerates the mitigation comparison (Figure 17)
// for one benchmark and reports Flowery's coverage improvement over
// plain duplication at assembly level.
func BenchmarkFigure17(b *testing.B) {
	bm := mustBench(b, "lud")
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunBenchmark(bm, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		improvement := r.CoverageFlowery(dup.Level100) - r.CoverageAsm(dup.Level100)
		b.ReportMetric(improvement*100, "flowery-gain-%")
	}
}

// BenchmarkOverhead regenerates the §7.2 measurement: Flowery's extra
// dynamic instructions on top of plain duplication at full protection.
func BenchmarkOverhead(b *testing.B) {
	bm := mustBench(b, "fft2")
	for i := 0; i < b.N; i++ {
		id := bm.Build()
		if err := dup.ApplyFull(id); err != nil {
			b.Fatal(err)
		}
		flm := bm.Build()
		if err := dup.ApplyFull(flm); err != nil {
			b.Fatal(err)
		}
		if _, err := fl.Apply(flm, fl.All()); err != nil {
			b.Fatal(err)
		}
		dynID := goldenAsmDyn(b, id)
		dynFL := goldenAsmDyn(b, flm)
		b.ReportMetric((float64(dynFL)/float64(dynID)-1)*100, "flowery-overhead-%")
	}
}

// BenchmarkPassTime regenerates the §7.3 measurement: wall-clock time of
// the Flowery transform itself across all 16 benchmarks.
func BenchmarkPassTime(b *testing.B) {
	mods := make([]*ir.Module, 0, 16)
	for _, bm := range bench.All() {
		m := bm.Build()
		if err := dup.ApplyFull(m); err != nil {
			b.Fatal(err)
		}
		mods = append(mods, m)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// The transform mutates, so each iteration needs fresh clones.
		fresh := make([]*ir.Module, len(mods))
		for j, m := range mods {
			fresh[j] = ir.CloneModule(m)
		}
		b.StartTimer()
		for _, m := range fresh {
			if _, err := fl.Apply(m, fl.All()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func goldenAsmDyn(b *testing.B, m *ir.Module) int64 {
	b.Helper()
	prog, err := backend.Lower(m)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		b.Fatal(err)
	}
	res := mc.Run(sim.Fault{}, sim.Options{})
	if res.Status != sim.StatusOK {
		b.Fatalf("golden run failed: %v", res.Status)
	}
	return res.DynInstrs
}

// BenchmarkAblation regenerates the per-patch ablation (extension A1)
// and reports the coverage the combined patches reach.
func BenchmarkAblation(b *testing.B) {
	bm := mustBench(b, "lud")
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunAblation(bm, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(campaign.Coverage(r.Raw, r.All)*100, "flowery-coverage-%")
	}
}

// BenchmarkInterp measures IR interpreter throughput.
func BenchmarkInterp(b *testing.B) {
	bm := mustBench(b, "susan")
	m := bm.Build()
	ip := interp.New(m)
	golden := ip.Run(sim.Fault{}, sim.Options{})
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		ip.Run(sim.Fault{}, sim.Options{})
		instrs += golden.DynInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "M-instrs/s")
}

// BenchmarkMachine measures assembly simulator throughput.
func BenchmarkMachine(b *testing.B) {
	bm := mustBench(b, "susan")
	m := bm.Build()
	prog, err := backend.Lower(m)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		b.Fatal(err)
	}
	golden := mc.Run(sim.Fault{}, sim.Options{})
	b.ResetTimer()
	var instrs int64
	for i := 0; i < b.N; i++ {
		mc.Run(sim.Fault{}, sim.Options{})
		instrs += golden.DynInstrs
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "M-instrs/s")
}

// BenchmarkInterpThroughput measures IR interpreter throughput with the
// reference loop pinned (ref) and with the compiled fast core (fast);
// the ratio is the speedup recorded in BENCH_4.json (regenerate with
// `go run ./cmd/experiments -only simbench -json`).
func BenchmarkInterpThroughput(b *testing.B) {
	bm := mustBench(b, "susan")
	m := bm.Build()
	ip := interp.New(m)
	golden := ip.Run(sim.Fault{}, sim.Options{})
	for _, mode := range []struct {
		name string
		ref  bool
	}{
		{"ref", true},
		{"fast", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := sim.Options{Reference: mode.ref}
			var instrs int64
			for i := 0; i < b.N; i++ {
				ip.Run(sim.Fault{}, opts)
				instrs += golden.DynInstrs
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkMachineThroughput is BenchmarkInterpThroughput for the
// assembly simulator.
func BenchmarkMachineThroughput(b *testing.B) {
	bm := mustBench(b, "susan")
	m := bm.Build()
	prog, err := backend.Lower(m)
	if err != nil {
		b.Fatal(err)
	}
	mc, err := machine.New(m, prog)
	if err != nil {
		b.Fatal(err)
	}
	golden := mc.Run(sim.Fault{}, sim.Options{})
	for _, mode := range []struct {
		name string
		ref  bool
	}{
		{"ref", true},
		{"fast", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			opts := sim.Options{Reference: mode.ref}
			var instrs int64
			for i := 0; i < b.N; i++ {
				mc.Run(sim.Fault{}, opts)
				instrs += golden.DynInstrs
			}
			b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkCampaignSnapshot measures campaign throughput with checkpoint
// fast-forwarding off (scratch) and on (snapshot) for the same spec; the
// runs/s metrics are the headline quantity recorded in BENCH_1.json
// (regenerate with `go run ./cmd/experiments -only campbench -json`).
func BenchmarkCampaignSnapshot(b *testing.B) {
	bm := mustBench(b, "susan")
	m := bm.Build()
	if err := dup.ApplyFull(m); err != nil {
		b.Fatal(err)
	}
	prog, err := backend.Lower(m)
	if err != nil {
		b.Fatal(err)
	}
	f := func() (sim.Engine, error) { return machine.New(m, prog) }
	for _, mode := range []struct {
		name      string
		snapshots int
	}{
		{"scratch", -1},
		{"snapshot", 0},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var rps, saved float64
			for i := 0; i < b.N; i++ {
				st, err := campaign.Run(f, campaign.Spec{
					Runs: benchCfg.Runs, Seed: benchCfg.Seed, Snapshots: mode.snapshots,
				})
				if err != nil {
					b.Fatal(err)
				}
				rps += st.RunsPerSec()
				saved += st.SavedFrac()
			}
			b.ReportMetric(rps/float64(b.N), "runs/s")
			b.ReportMetric(saved/float64(b.N)*100, "saved-%")
		})
	}
}

// BenchmarkLower measures backend lowering speed over all benchmarks.
func BenchmarkLower(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range bench.All() {
			m := bm.Build()
			if _, err := backend.Lower(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDuplication measures the duplication transform over all
// benchmarks at full protection.
func BenchmarkDuplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, bm := range bench.All() {
			m := bm.Build()
			if err := dup.ApplyFull(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}
