// Package flowery is a from-scratch Go reproduction of "Demystifying and
// Mitigating Cross-Layer Deficiencies of Soft Error Protection in
// Instruction Duplication" (SC 2023).
//
// The repository contains the full experimental stack of the paper,
// re-implemented in pure Go (standard library only):
//
//   - an LLVM-flavoured IR with builder, verifier, printer and parser
//     (internal/ir), executed by a fault-injecting interpreter
//     (internal/interp) — the paper's LLVM-level fault injector;
//   - a clang -O0-style backend (internal/backend) lowering IR to an
//     x86-64-like assembly (internal/asm), executed by a fault-injecting
//     architectural simulator (internal/machine) — the paper's PIN-level
//     fault injector;
//   - selective instruction duplication with fault-injection profiling
//     and 0-1 knapsack selection (internal/dup, internal/knapsack);
//   - the Flowery mitigation patches: eager store, postponed branch
//     condition check, anti-comparison duplication (internal/flowery);
//   - the paper's 16 benchmarks (internal/bench), the campaign harness
//     (internal/campaign), and the per-figure experiment drivers
//     (internal/experiment).
//
// Start with README.md, run `go run ./examples/quickstart`, and
// regenerate the paper's tables and figures with
// `go run ./cmd/experiments`.
package flowery
